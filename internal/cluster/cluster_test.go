package cluster

import (
	"crypto/x509"
	"fmt"
	"strings"
	"testing"
	"time"

	"tlsfof/internal/classify"
	"tlsfof/internal/core"
	"tlsfof/internal/hostdb"
	"tlsfof/internal/stats"
	"tlsfof/internal/store"
)

// testMeasurements builds a deterministic stream spread over enough
// distinct hosts that any ring partition splits it across every node.
func testMeasurements(n int, seed uint64) []core.Measurement {
	r := stats.NewRNG(seed)
	countries := []string{"US", "BR", "IN", "DE", "??", "JP"}
	cats := []hostdb.Category{hostdb.Popular, hostdb.Business, hostdb.Popular}
	campaigns := []string{"broad", "targeted-br"}
	epoch := time.Date(2014, time.October, 8, 16, 0, 0, 0, time.UTC)
	ms := make([]core.Measurement, 0, n)
	for i := 0; i < n; i++ {
		hi := r.Intn(24)
		m := core.Measurement{
			Time:         epoch.Add(time.Duration(i) * time.Minute),
			ClientIP:     uint32(r.Uint64()>>16) | 1,
			Country:      countries[r.Intn(len(countries))],
			Host:         fmt.Sprintf("host-%02d.example", hi),
			HostCategory: cats[hi%len(cats)],
			Campaign:     campaigns[r.Intn(len(campaigns))],
		}
		if r.Bool(0.35) {
			bits := []int{512, 1024, 2048, 2432}[r.Intn(4)]
			m.Obs = core.Observation{
				Proxied:     true,
				IssuerOrg:   "Fortinet",
				IssuerCN:    "FortiGate CA",
				ProductName: "FortiGate",
				KeyBits:     bits,
				WeakKey:     bits < 2048,
				SigAlg:      x509.SHA256WithRSA,
				ChainLen:    1 + r.Intn(3),
				Category:    classify.Category(r.Intn(5)),
			}
		}
		ms = append(ms, m)
	}
	return ms
}

// canonSnapshot renders a store through one more canonical merge so any
// two stores holding the same measurements compare byte-identical
// regardless of how the cluster partitioned them.
func canonSnapshot(dbs ...*store.DB) []byte {
	return store.Merge(0, dbs...).AppendSnapshot(nil)
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1 := NewRing([]string{"a", "b", "c"}, 0)
	r2 := NewRing([]string{"c", "b", "a", "b", ""}, 0) // order and junk must not matter
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("host-%04d.example", i)
		o1, ok1 := r1.Owner(k)
		o2, ok2 := r2.Owner(k)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("key %q: owners %q/%q (ok %v/%v) differ across build orders", k, o1, o2, ok1, ok2)
		}
		counts[o1]++
	}
	for _, id := range []string{"a", "b", "c"} {
		if counts[id] < keys*15/100 {
			t.Fatalf("node %s owns only %d/%d keys; vnode smoothing failed: %v", id, counts[id], keys, counts)
		}
	}
	if _, ok := NewRing(nil, 0).Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

func TestRingSuccessor(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	seen := map[string]string{}
	for _, id := range r.Nodes() {
		succ, ok := r.Successor(id)
		if !ok || succ == id {
			t.Fatalf("successor of %s = %q, %v", id, succ, ok)
		}
		seen[id] = succ
	}
	// Deterministic across rebuilds.
	again := NewRing([]string{"c", "a", "b"}, 0)
	for id, want := range seen {
		if got, _ := again.Successor(id); got != want {
			t.Fatalf("successor of %s changed across builds: %s then %s", id, want, got)
		}
	}
	if _, ok := NewRing([]string{"solo"}, 0).Successor("solo"); ok {
		t.Fatal("one-node ring produced a successor")
	}
}

func TestMembershipLifecycle(t *testing.T) {
	members := []Member{{ID: "a", URL: "http://a"}, {ID: "b", URL: "http://b"}, {ID: "c", URL: "http://c"}}
	ms, err := NewMembership(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Epoch() != 0 || ms.AliveCount() != 3 {
		t.Fatalf("fresh view: epoch %d, alive %d", ms.Epoch(), ms.AliveCount())
	}
	// Find a host a owns, drain a, and watch ownership move.
	var host string
	for i := 0; ; i++ {
		h := fmt.Sprintf("host-%d.example", i)
		if m, ok := ms.Owner(h); ok && m.ID == "a" {
			host = h
			break
		}
	}
	if !ms.MarkDraining("a") {
		t.Fatal("draining transition reported no change")
	}
	if ms.Epoch() != 1 {
		t.Fatalf("epoch after drain = %d", ms.Epoch())
	}
	if m, _ := ms.Owner(host); m.ID == "a" {
		t.Fatal("draining member still owns ring arcs")
	}
	if ms.MarkDraining("a") {
		t.Fatal("repeated transition claimed a change")
	}
	if !ms.MarkDead("a") {
		t.Fatal("draining→dead refused")
	}
	if ms.SetState("a", Alive) {
		t.Fatal("dead is terminal; resurrection must be refused")
	}
	if ms.AliveCount() != 2 || ms.Epoch() != 2 {
		t.Fatalf("after death: alive %d, epoch %d", ms.AliveCount(), ms.Epoch())
	}
	if _, err := NewMembership([]Member{{ID: "x"}, {ID: "x"}}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestParseMembers(t *testing.T) {
	got, err := ParseMembers("a=http://127.0.0.1:1,b=http://127.0.0.1:2/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "a" || got[1].URL != "http://127.0.0.1:2" {
		t.Fatalf("parsed %+v", got)
	}
	for _, bad := range []string{"", "a", "=url", "a="} {
		if _, err := ParseMembers(bad); err == nil {
			t.Fatalf("ParseMembers(%q) accepted", bad)
		}
	}
}

func TestMeasWireRoundTripAndDamage(t *testing.T) {
	ms := testMeasurements(50, 3)
	enc := AppendMeasurements(nil, ms)
	dec, err := DecodeMeasurements(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(ms) {
		t.Fatalf("decoded %d of %d", len(dec), len(ms))
	}
	// The codec is canonical: re-encoding the decode reproduces the bytes.
	if re := AppendMeasurements(nil, dec); string(re) != string(enc) {
		t.Fatal("re-encoded batch differs from the original bytes")
	}
	for cut := 1; cut < len(enc); cut += 97 {
		if _, err := DecodeMeasurements(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := DecodeMeasurements(append(append([]byte{}, enc...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeMeasurements([]byte("TFM0")); err == nil {
		t.Fatal("bad magic accepted")
	}
	huge := append([]byte(measMagic), 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := DecodeMeasurements(huge); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized count: %v", err)
	}
}
