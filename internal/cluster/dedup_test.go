package cluster

import (
	"testing"
	"time"

	"tlsfof/internal/ingest"
)

// TestDedupClaimResolvedVerdict: a kept verdict answers every later
// claim of the same ID without blocking.
func TestDedupClaimResolvedVerdict(t *testing.T) {
	var d dedupTable
	e, _, dup := d.claim(7)
	if dup {
		t.Fatal("fresh ID reported as duplicate")
	}
	d.resolve(7, e, ingest.BatchResult{Accepted: 3}, true)
	_, res, dup := d.claim(7)
	if !dup || res.Accepted != 3 {
		t.Fatalf("retry of a kept verdict: dup=%v res=%+v", dup, res)
	}
}

// TestDedupClaimBlocksInflightTwin pins the double-apply race the chaos
// matrix exposed: a twin arriving while the first copy is mid-apply
// must wait for that verdict instead of missing the lookup and
// re-applying the batch.
func TestDedupClaimBlocksInflightTwin(t *testing.T) {
	var d dedupTable
	e, _, dup := d.claim(42)
	if dup {
		t.Fatal("fresh ID reported as duplicate")
	}
	got := make(chan ingest.BatchResult, 1)
	go func() {
		_, res, dup := d.claim(42)
		if !dup {
			res.Accepted = -1 // sentinel: the twin was allowed to re-run
		}
		got <- res
	}()
	select {
	case <-got:
		t.Fatal("twin claim returned while the first copy was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	d.resolve(42, e, ingest.BatchResult{Accepted: 9}, true)
	res := <-got
	if res.Accepted != 9 {
		t.Fatalf("twin saw %+v, want the first copy's kept verdict", res)
	}
}

// TestDedupAbandonedClaimHandsOver: a claim resolved without a durable
// apply (NotOwner, error) must hand the ID to the waiting twin so the
// retry genuinely re-runs.
func TestDedupAbandonedClaimHandsOver(t *testing.T) {
	var d dedupTable
	e, _, _ := d.claim(5)
	took := make(chan bool, 1)
	go func() {
		e2, _, dup := d.claim(5)
		took <- !dup && e2 != nil
		if e2 != nil {
			d.resolve(5, e2, ingest.BatchResult{Accepted: 1}, true)
		}
	}()
	d.resolve(5, e, ingest.BatchResult{NotOwner: true}, false)
	if !<-took {
		t.Fatal("twin was answered from an abandoned claim instead of taking over")
	}
	// And the takeover's verdict is now the one on record.
	_, res, dup := d.claim(5)
	if !dup || res.Accepted != 1 {
		t.Fatalf("after takeover: dup=%v res=%+v", dup, res)
	}
}
