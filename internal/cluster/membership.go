package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// State is a member's lifecycle state. There is no suspicion phase: the
// orchestrator decides, the cluster obeys.
type State uint8

const (
	// Alive members own ring arcs and accept writes.
	Alive State = iota
	// Draining members are leaving gracefully: they keep serving reads
	// and replication tails but answer new writes with a not-owner
	// verdict naming the new owner.
	Draining
	// Dead members are gone; their shards are recovered from replicas.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Draining:
		return "draining"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ParseState inverts State.String.
func ParseState(s string) (State, error) {
	switch s {
	case "alive":
		return Alive, nil
	case "draining":
		return Draining, nil
	case "dead":
		return Dead, nil
	}
	return 0, fmt.Errorf("cluster: unknown state %q", s)
}

// Member is one reportd instance in the cluster view.
type Member struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	State State  `json:"state"`
}

// ParseMembers parses the flag syntax "id=url,id=url,...".
func ParseMembers(spec string) ([]Member, error) {
	var members []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad member %q (want id=url)", part)
		}
		members = append(members, Member{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	return members, nil
}

// Membership is one process's view of the cluster: the member set, an
// ownership ring recomputed over the alive members, and an epoch that
// counts every ring change (a rebalance). All methods are safe for
// concurrent use.
type Membership struct {
	vnodes int

	mu      sync.RWMutex
	members map[string]Member
	ring    *Ring
	epoch   uint64
}

// NewMembership builds a view over members (IDs must be unique; at least
// one). vnodes <= 0 means DefaultVNodes.
func NewMembership(members []Member, vnodes int) (*Membership, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	ms := &Membership{vnodes: vnodes, members: make(map[string]Member, len(members))}
	for _, m := range members {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member with empty ID")
		}
		if _, dup := ms.members[m.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate member %q", m.ID)
		}
		ms.members[m.ID] = m
	}
	ms.rebuildLocked()
	return ms, nil
}

// rebuildLocked recomputes the ownership ring over the alive members.
func (ms *Membership) rebuildLocked() {
	ids := make([]string, 0, len(ms.members))
	for id, m := range ms.members {
		if m.State == Alive {
			ids = append(ids, id)
		}
	}
	ms.ring = NewRing(ids, ms.vnodes)
}

// Epoch returns how many times the ring has changed.
func (ms *Membership) Epoch() uint64 {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return ms.epoch
}

// Get returns the member by ID.
func (ms *Membership) Get(id string) (Member, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	m, ok := ms.members[id]
	return m, ok
}

// Members returns every member (any state), sorted by ID.
func (ms *Membership) Members() []Member {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	out := make([]Member, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AliveCount counts members in the Alive state.
func (ms *Membership) AliveCount() int {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	n := 0
	for _, m := range ms.members {
		if m.State == Alive {
			n++
		}
	}
	return n
}

// Owner routes a report host to the member owning it. False when no
// alive member remains or the host's owner vanished mid-lookup.
func (ms *Membership) Owner(host string) (Member, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	id, ok := ms.ring.Owner(host)
	if !ok {
		return Member{}, false
	}
	m, ok := ms.members[id]
	return m, ok
}

// ReplicaTarget returns the member holding id's replica: its ring
// successor among the members alive when the view was built. False for
// a one-node cluster or an unknown id.
func (ms *Membership) ReplicaTarget(id string) (Member, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	succ, ok := ms.ring.Successor(id)
	if !ok {
		return Member{}, false
	}
	m, ok := ms.members[succ]
	return m, ok
}

// SetState transitions one member, rebuilding the ring and bumping the
// epoch when ownership actually changed. It reports whether anything
// changed. Dead is terminal: a dead member never comes back under the
// same ID (restart it and it catches up from its own WAL, but routing
// state machines stay monotonic).
func (ms *Membership) SetState(id string, s State) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	m, ok := ms.members[id]
	if !ok || m.State == s || m.State == Dead {
		return false
	}
	m.State = s
	ms.members[id] = m
	ms.rebuildLocked()
	ms.epoch++
	return true
}

// MarkDead is SetState(id, Dead).
func (ms *Membership) MarkDead(id string) bool { return ms.SetState(id, Dead) }

// MarkDraining is SetState(id, Draining).
func (ms *Membership) MarkDraining(id string) bool { return ms.SetState(id, Draining) }
