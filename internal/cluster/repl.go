package cluster

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"tlsfof/internal/durable"
)

// follower tails one (source node, shard) WAL into a local replica log.
// It is pull-based and resumable: every poll asks for the replica's own
// durable NextSeq, so a cut connection, a torn stream, or a follower
// restart costs nothing but a re-poll. The source reads that position as
// the replication watermark and releases pending ingest acks against it
// — which is why the follower only advances its position after an
// explicit Sync.
type follower struct {
	n        *Node
	source   string
	shardIdx int
	dir      string
	// log is behind an atomic pointer because snapshot catch-up replaces
	// it mid-run while Status and Close read it from other goroutines.
	log  atomic.Pointer[durable.Log]
	done chan struct{}
}

func (f *follower) logRef() *durable.Log { return f.log.Load() }

func (f *follower) run() {
	defer close(f.done)
	for {
		select {
		case <-f.n.stop:
			f.exitSync()
			return
		default:
		}
		src, ok := f.n.members.Get(f.source)
		if !ok || src.State == Dead {
			// The source is gone; the replica now IS the shard. Seal it.
			f.exitSync()
			f.n.cfg.Logf("cluster %s: follower of %s shard %d stopped (source dead) at seq %d",
				f.n.self.ID, f.source, f.shardIdx, f.logRef().NextSeq()-1)
			return
		}
		applied, err := f.pollOnce(src.URL)
		if f.n.killed.Load() {
			return // SIGKILL semantics: no final sync
		}
		if err != nil || applied == 0 {
			select {
			case <-f.n.stop:
			case <-time.After(f.n.cfg.PollInterval):
			}
			continue
		}
		// Applied something: poll again immediately so the new durable
		// position reaches the source and releases its pending acks.
	}
}

// exitSync makes the replica's buffered tail durable on a clean stop; a
// killed node skips it (Kill abandons buffers by design).
func (f *follower) exitSync() {
	if !f.n.killed.Load() {
		f.logRef().Sync()
	}
}

// pollOnce runs one tail request and applies its records. It returns
// how many records (frames or snapshots) it applied; the replica log is
// synced before returning so the next poll's from is an honest promise.
func (f *follower) pollOnce(baseURL string) (applied int, err error) {
	url := fmt.Sprintf("%s/repl/tail?shard=%d&from=%d", baseURL, f.shardIdx, f.logRef().NextSeq())
	resp, err := f.n.cfg.HTTPClient.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		// The source says we are ahead of it: a wiped or replaced source
		// directory. Replicating would corrupt the watermark contract, so
		// keep the replica intact and keep complaining.
		f.n.cfg.Logf("cluster %s: follower of %s shard %d: source behind replica (operator intervention needed)",
			f.n.self.ID, f.source, f.shardIdx)
		return 0, fmt.Errorf("cluster: source behind replica")
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: tail %s: HTTP %d", url, resp.StatusCode)
	}
	dec := durable.NewReplDecoder(resp.Body)
	for {
		rec, derr := dec.Next()
		if errors.Is(derr, io.EOF) {
			break // clean end
		}
		if derr != nil {
			// Torn or corrupt stream: keep the applied prefix, re-poll
			// from our own durable position.
			err = derr
			break
		}
		switch rec.Type {
		case durable.ReplSnapshot:
			if rec.Seq < f.logRef().NextSeq() {
				continue // covers nothing we lack
			}
			if rerr := f.resetTo(rec.Seq, rec.Payload); rerr != nil {
				f.finishPoll(applied)
				return applied, rerr
			}
			f.n.met.snapsApplied.Inc()
			applied++
		case durable.ReplFrame:
			next := f.logRef().NextSeq()
			switch {
			case rec.Seq < next:
				// overlap from a duplicated poll
			case rec.Seq == next:
				if aerr := f.logRef().AppendEncoded(rec.Payload); aerr != nil {
					f.finishPoll(applied)
					return applied, aerr
				}
				f.n.met.framesApplied.Inc()
				applied++
			default:
				// A gap should be impossible on an intact source; re-poll
				// rather than replicate around it.
				f.finishPoll(applied)
				return applied, fmt.Errorf("cluster: tail gap: got seq %d, replica at %d", rec.Seq, next)
			}
		}
	}
	f.finishPoll(applied)
	return applied, err
}

// finishPoll syncs whatever this poll appended and counts it.
func (f *follower) finishPoll(applied int) {
	if applied > 0 {
		f.logRef().Sync()
		f.n.met.catchupPolls.Inc()
	}
}

// resetTo handles snapshot catch-up: the source compacted past our
// position, so the replica directory restarts from the received image.
func (f *follower) resetTo(covered uint64, image []byte) error {
	if err := f.logRef().Close(); err != nil {
		return err
	}
	if err := os.RemoveAll(f.dir); err != nil {
		return err
	}
	if err := os.MkdirAll(f.dir, 0o777); err != nil {
		return err
	}
	if err := durable.WriteSnapshot(f.dir, covered, image); err != nil {
		return err
	}
	log, err := durable.Open(f.n.shardOptions(f.dir))
	if err != nil {
		return err
	}
	f.log.Store(log)
	return nil
}
