package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/ingest"
	"tlsfof/internal/resilient"
	"tlsfof/internal/stats"
	"tlsfof/internal/telemetry"
)

// DefaultRouteBatch is measurements buffered per owner before a flush.
const DefaultRouteBatch = 512

// RouteStats is the router's delivery accounting: with sync-acked nodes,
// Delivered + buffered == ingested, and Lost must stay zero.
type RouteStats struct {
	Ingested        uint64 `json:"ingested"`
	Delivered       uint64 `json:"delivered"`
	Batches         uint64 `json:"batches"`
	Retries         uint64 `json:"retries"`
	NotOwnerRetries uint64 `json:"not_owner_retries"`
	Rerouted        uint64 `json:"rerouted"`
	DeadMarked      uint64 `json:"dead_marked"`
	Lost            uint64 `json:"lost"`
	// BreakerOpens counts per-peer circuit-breaker trips: the router
	// stopped hammering a peer that kept failing and went straight to
	// the relay path until the cooldown probe succeeded.
	BreakerOpens uint64 `json:"breaker_opens"`
	// Relayed counts batches delivered through a reachable peer because
	// the direct link to the owner was down while the owner itself was
	// not provably dead.
	Relayed uint64 `json:"relayed"`
	// DuplicateAcks counts acks answered from the owner's dedup table: a
	// previous attempt applied the batch but its ack died on the wire
	// (the asymmetric-partition window). Delivered counts such a batch
	// exactly once — on this ack, the only one the router ever saw.
	DuplicateAcks uint64 `json:"duplicate_acks"`
}

// RouteConfig configures a RouteClient.
type RouteConfig struct {
	// Members is the router's cluster view. The client updates it (marks
	// nodes dead) when delivery proves a node gone.
	Members *Membership
	// HTTPClient defaults to a split-deadline client
	// (resilient.SplitTimeoutClient with its defaults).
	HTTPClient *http.Client
	// BatchSize is per-owner buffering (default DefaultRouteBatch).
	BatchSize int
	// Retries is transport-level retries per batch against the direct
	// owner link before the relay path is tried (default 2).
	Retries int
	// RetryDelay is the backoff base between transport retries (default
	// 50ms). Actual sleeps are capped jittered exponential: attempt k
	// draws from [d/2, d) where d = min(RetryCap, RetryDelay<<k).
	RetryDelay time.Duration
	// RetryCap caps one backoff sleep (default 8×RetryDelay).
	RetryCap time.Duration
	// BreakerThreshold is consecutive direct-delivery failures before a
	// peer's breaker opens (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses direct
	// attempts before admitting a half-open probe (default 1s).
	BreakerCooldown time.Duration
	// Seed drives batch-ID generation and retry jitter; a seeded router
	// replays an identical schedule. 0 derives a seed from the clock.
	Seed uint64
	// Stop aborts in-flight retry sleeps when closed (e.g. study
	// shutdown). Nil means sleeps run to completion.
	Stop <-chan struct{}
	// Registry, when set, exposes the router's accounting as metrics
	// (route_* gauges mirroring RouteStats).
	Registry *telemetry.Registry
	// Logf, when set, receives routing one-liners.
	Logf func(format string, args ...any)
}

// RouteClient is a core.Sink that routes measurements to the cluster
// node owning each host. It buffers one batch per owner, reroutes on
// not-owner verdicts (a draining or stale target names the new owner)
// and on node death, and records delivery accounting strong enough for
// the kill test to assert zero loss.
//
// Delivery is self-healing: every batch carries a dedup ID so retries
// after a lost ack cannot double count; per-peer circuit breakers stop
// hammering a failing direct link; and when the direct link to a live
// owner is cut the batch relays through a reachable peer. A node is
// marked dead only after the direct path AND every relay path failed —
// an unreachable-to-us-but-alive node keeps its shards.
//
// Ingest and Flush serialize on one lock — use one RouteClient per
// producing goroutine or accept the serialization.
type RouteClient struct {
	cfg RouteConfig

	mu       sync.Mutex
	bufs     map[string][]core.Measurement
	stats    RouteStats
	err      error
	rng      *stats.RNG
	breakers map[string]*resilient.Breaker
}

// NewRouteClient builds a router over cfg.Members (required).
func NewRouteClient(cfg RouteConfig) (*RouteClient, error) {
	if cfg.Members == nil {
		return nil, fmt.Errorf("cluster: RouteConfig.Members required")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = resilient.SplitTimeoutClient(0, 0, nil)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultRouteBatch
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 50 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 8 * cfg.RetryDelay
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = uint64(time.Now().UnixNano())
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	rc := &RouteClient{
		cfg:      cfg,
		bufs:     make(map[string][]core.Measurement),
		rng:      stats.NewRNG(cfg.Seed),
		breakers: make(map[string]*resilient.Breaker),
	}
	if cfg.Registry != nil {
		rc.mountMetrics(cfg.Registry)
	}
	return rc, nil
}

func (rc *RouteClient) mountMetrics(reg *telemetry.Registry) {
	field := func(name, help string, f func(RouteStats) uint64) {
		reg.GaugeFunc(name, help, func() float64 { return float64(f(rc.Stats())) })
	}
	field("route_delivered_total", "measurements acked by their owning node", func(s RouteStats) uint64 { return s.Delivered })
	field("route_retries_total", "transport-level delivery retries", func(s RouteStats) uint64 { return s.Retries })
	field("route_rerouted_total", "measurements re-split after a failed or disowned delivery", func(s RouteStats) uint64 { return s.Rerouted })
	field("route_breaker_opens_total", "per-peer circuit-breaker trips", func(s RouteStats) uint64 { return s.BreakerOpens })
	field("route_relayed_total", "batches delivered through a relay peer", func(s RouteStats) uint64 { return s.Relayed })
	field("route_duplicate_acks_total", "batch acks answered from an owner's dedup table", func(s RouteStats) uint64 { return s.DuplicateAcks })
	field("route_dead_marked_total", "peers this router declared dead", func(s RouteStats) uint64 { return s.DeadMarked })
	field("route_lost_total", "measurements the router could not deliver anywhere", func(s RouteStats) uint64 { return s.Lost })
}

// breakerFor returns the peer's breaker, creating it closed.
func (rc *RouteClient) breakerFor(id string) *resilient.Breaker {
	br := rc.breakers[id]
	if br == nil {
		br = resilient.NewBreaker(rc.cfg.BreakerThreshold, rc.cfg.BreakerCooldown, nil)
		rc.breakers[id] = br
	}
	return br
}

// Ingest buffers one measurement toward its owning node, flushing the
// owner's batch when full. Satisfies core.Sink.
func (rc *RouteClient) Ingest(m core.Measurement) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.stats.Ingested++
	rc.enqueueLocked(m, 0)
}

func (rc *RouteClient) enqueueLocked(m core.Measurement, depth int) {
	if depth > 8 {
		rc.fail(fmt.Errorf("cluster: reroute depth exhausted for host %s", m.Host))
		return
	}
	owner, ok := rc.cfg.Members.Owner(m.Host)
	if !ok {
		rc.fail(fmt.Errorf("cluster: no alive owner for host %s", m.Host))
		return
	}
	rc.bufs[owner.ID] = append(rc.bufs[owner.ID], m)
	if len(rc.bufs[owner.ID]) >= rc.cfg.BatchSize {
		rc.flushOwnerLocked(owner.ID, depth+1)
	}
}

// Flush delivers every buffered batch and returns the first error the
// router has ever hit (delivery gaps are never silent).
func (rc *RouteClient) Flush() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for id := range rc.bufs {
		rc.flushOwnerLocked(id, 0)
	}
	return rc.err
}

// Err returns the sticky first error.
func (rc *RouteClient) Err() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.err
}

// Stats returns a copy of the delivery accounting.
func (rc *RouteClient) Stats() RouteStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

func (rc *RouteClient) fail(err error) {
	rc.stats.Lost++
	if rc.err == nil {
		rc.err = err
	}
	rc.cfg.Logf("cluster route: %v", err)
}

// flushOwnerLocked delivers one owner's buffered batch, handling the
// three verdicts: accepted; not-owner (re-split against the current
// ring — the membership may have moved on since the batch buffered);
// transport death (mark the node dead, re-split). Re-split measurements
// re-enter through enqueueLocked, so every hop re-consults the ring.
func (rc *RouteClient) flushOwnerLocked(id string, depth int) {
	batch := rc.bufs[id]
	if len(batch) == 0 {
		return
	}
	delete(rc.bufs, id)
	reroute := func(why string) {
		rc.stats.Rerouted += uint64(len(batch))
		rc.cfg.Logf("cluster route: rerouting %d measurements away from %s (%s)", len(batch), id, why)
		for _, m := range batch {
			rc.enqueueLocked(m, depth+1)
		}
	}
	member, ok := rc.cfg.Members.Get(id)
	if !ok || member.State != Alive {
		reroute("no longer alive")
		return
	}
	res, err := rc.deliverBatch(member, batch)
	switch {
	case err != nil:
		// Direct AND relay delivery failed: from everywhere we can reach,
		// the node is gone. Declare it dead so the ring moves on, then
		// re-split. With sync-acked ingest an undelivered batch never
		// touched the dead node's WAL, so the retry cannot double count.
		if rc.cfg.Members.MarkDead(id) {
			rc.stats.DeadMarked++
			rc.cfg.Logf("cluster route: marked %s dead after %v", id, err)
		}
		reroute("delivery failed")
	case res.NotOwner:
		// The node disowns the batch under its own view (draining, or it
		// saw a death we have not). Fold that into our view — otherwise
		// the re-split consults our stale ring and targets the same node
		// forever.
		rc.stats.NotOwnerRetries++
		rc.cfg.Members.MarkDraining(id)
		reroute(fmt.Sprintf("not owner, moved to %s", res.Owner))
	case res.Error != "":
		rc.fail(fmt.Errorf("cluster: node %s rejected batch: %s", id, res.Error))
	default:
		if res.Duplicate {
			rc.stats.DuplicateAcks++
		}
		rc.stats.Delivered += uint64(res.Accepted)
		rc.stats.Batches++
		if res.Owner != "" && res.Owner != id {
			// A relay peer applied the batch as owner: in its fresher view
			// our target no longer owns anything. Fold that in — the data
			// is safe where it landed, and future batches should go
			// straight to the real owner instead of relaying forever.
			if rc.cfg.Members.MarkDead(id) {
				rc.stats.DeadMarked++
				rc.cfg.Logf("cluster route: marked %s dead (relay peer %s owns its arcs)", id, res.Owner)
			}
		}
	}
}

// deliverBatch pushes one batch to its owner: the direct link first
// (breaker permitting, with backoff retries), then relayed through each
// reachable alive peer. The batch ID makes the whole sequence
// idempotent — whichever path lands first wins and every other arrival
// is answered from the owner's dedup table.
func (rc *RouteClient) deliverBatch(member Member, ms []core.Measurement) (ingest.BatchResult, error) {
	id := rc.nextBatchID()
	body := AppendMeasurementsID(nil, id, ms)
	br := rc.breakerFor(member.ID)
	var directErr error
	if br.Allow() {
		res, err := rc.postBody(member, body, false, rc.cfg.Retries)
		if err == nil {
			br.Success()
			return res, nil
		}
		before := br.Opens()
		br.Failure()
		rc.stats.BreakerOpens += br.Opens() - before
		directErr = err
	} else {
		directErr = fmt.Errorf("cluster: breaker open for %s", member.ID)
	}
	// The direct link is down but that proves nothing about the node —
	// the fault may be our link. Triangle-route through peers that can
	// still hear us; the owner's verdict travels back verbatim.
	for _, peer := range rc.cfg.Members.Members() {
		if peer.ID == member.ID || peer.State != Alive {
			continue
		}
		res, err := rc.postBody(peer, body, true, 0)
		if err != nil {
			continue // this relay path is down too; try the next peer
		}
		rc.stats.Relayed++
		rc.cfg.Logf("cluster route: relayed batch to %s via %s", member.ID, peer.ID)
		return res, nil
	}
	return ingest.BatchResult{}, directErr
}

// postBody sends one encoded batch with up to retries backoff-spaced
// retries. A non-2xx status or connection error after the retry budget
// returns an error; decoded verdicts (including not-owner) return
// normally. Relay requests ask the target to forward to the true owner.
func (rc *RouteClient) postBody(member Member, body []byte, relay bool, retries int) (ingest.BatchResult, error) {
	url := member.URL + "/cluster/ingest"
	if relay {
		url += "?relay=1"
	}
	bo := resilient.NewBackoff(rc.cfg.RetryDelay, rc.cfg.RetryCap, rc.rng.Uint64())
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			rc.stats.Retries++
			if err := resilient.Sleep(context.Background(), rc.cfg.Stop, bo.Next()); err != nil {
				return ingest.BatchResult{}, err
			}
		}
		resp, err := rc.cfg.HTTPClient.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		var res ingest.BatchResult
		derr := json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && derr == nil {
			return res, nil
		}
		if resp.StatusCode == http.StatusBadRequest {
			// The node decoded our batch and refused it wholesale; a
			// retry cannot fix an encoding problem.
			return res, nil
		}
		lastErr = fmt.Errorf("cluster: %s: HTTP %d", member.URL, resp.StatusCode)
	}
	return ingest.BatchResult{}, lastErr
}

// nextBatchID draws a non-zero dedup ID from the router's seeded RNG.
func (rc *RouteClient) nextBatchID() uint64 {
	for {
		if id := rc.rng.Uint64(); id != 0 {
			return id
		}
	}
}
