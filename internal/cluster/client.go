package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/ingest"
)

// DefaultRouteBatch is measurements buffered per owner before a flush.
const DefaultRouteBatch = 512

// RouteStats is the router's delivery accounting: with sync-acked nodes,
// Delivered + buffered == ingested, and Lost must stay zero.
type RouteStats struct {
	Ingested       uint64 `json:"ingested"`
	Delivered      uint64 `json:"delivered"`
	Batches        uint64 `json:"batches"`
	Retries        uint64 `json:"retries"`
	NotOwnerRetries uint64 `json:"not_owner_retries"`
	Rerouted       uint64 `json:"rerouted"`
	DeadMarked     uint64 `json:"dead_marked"`
	Lost           uint64 `json:"lost"`
}

// RouteConfig configures a RouteClient.
type RouteConfig struct {
	// Members is the router's cluster view. The client updates it (marks
	// nodes dead) when delivery proves a node gone.
	Members *Membership
	// HTTPClient defaults to a 30s-timeout client.
	HTTPClient *http.Client
	// BatchSize is per-owner buffering (default DefaultRouteBatch).
	BatchSize int
	// Retries is transport-level retries per batch before the target is
	// declared dead (default 2).
	Retries int
	// RetryDelay sleeps between transport retries (default 50ms).
	RetryDelay time.Duration
	// Logf, when set, receives routing one-liners.
	Logf func(format string, args ...any)
}

// RouteClient is a core.Sink that routes measurements to the cluster
// node owning each host. It buffers one batch per owner, reroutes on
// not-owner verdicts (a draining or stale target names the new owner)
// and on node death, and records delivery accounting strong enough for
// the kill test to assert zero loss. Ingest and Flush serialize on one
// lock — use one RouteClient per producing goroutine or accept the
// serialization.
type RouteClient struct {
	cfg RouteConfig

	mu    sync.Mutex
	bufs  map[string][]core.Measurement
	stats RouteStats
	err   error
}

// NewRouteClient builds a router over cfg.Members (required).
func NewRouteClient(cfg RouteConfig) (*RouteClient, error) {
	if cfg.Members == nil {
		return nil, fmt.Errorf("cluster: RouteConfig.Members required")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultRouteBatch
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &RouteClient{cfg: cfg, bufs: make(map[string][]core.Measurement)}, nil
}

// Ingest buffers one measurement toward its owning node, flushing the
// owner's batch when full. Satisfies core.Sink.
func (rc *RouteClient) Ingest(m core.Measurement) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.stats.Ingested++
	rc.enqueueLocked(m, 0)
}

func (rc *RouteClient) enqueueLocked(m core.Measurement, depth int) {
	if depth > 8 {
		rc.fail(fmt.Errorf("cluster: reroute depth exhausted for host %s", m.Host))
		return
	}
	owner, ok := rc.cfg.Members.Owner(m.Host)
	if !ok {
		rc.fail(fmt.Errorf("cluster: no alive owner for host %s", m.Host))
		return
	}
	rc.bufs[owner.ID] = append(rc.bufs[owner.ID], m)
	if len(rc.bufs[owner.ID]) >= rc.cfg.BatchSize {
		rc.flushOwnerLocked(owner.ID, depth+1)
	}
}

// Flush delivers every buffered batch and returns the first error the
// router has ever hit (delivery gaps are never silent).
func (rc *RouteClient) Flush() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for id := range rc.bufs {
		rc.flushOwnerLocked(id, 0)
	}
	return rc.err
}

// Err returns the sticky first error.
func (rc *RouteClient) Err() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.err
}

// Stats returns a copy of the delivery accounting.
func (rc *RouteClient) Stats() RouteStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

func (rc *RouteClient) fail(err error) {
	rc.stats.Lost++
	if rc.err == nil {
		rc.err = err
	}
	rc.cfg.Logf("cluster route: %v", err)
}

// flushOwnerLocked delivers one owner's buffered batch, handling the
// three verdicts: accepted; not-owner (re-split against the current
// ring — the membership may have moved on since the batch buffered);
// transport death (mark the node dead, re-split). Re-split measurements
// re-enter through enqueueLocked, so every hop re-consults the ring.
func (rc *RouteClient) flushOwnerLocked(id string, depth int) {
	batch := rc.bufs[id]
	if len(batch) == 0 {
		return
	}
	delete(rc.bufs, id)
	reroute := func(why string) {
		rc.stats.Rerouted += uint64(len(batch))
		rc.cfg.Logf("cluster route: rerouting %d measurements away from %s (%s)", len(batch), id, why)
		for _, m := range batch {
			rc.enqueueLocked(m, depth+1)
		}
	}
	member, ok := rc.cfg.Members.Get(id)
	if !ok || member.State != Alive {
		reroute("no longer alive")
		return
	}
	res, err := rc.postBatch(member, batch)
	switch {
	case err != nil:
		// Transport-level failure after retries: declare the node dead so
		// the ring moves on, then re-split. With sync-acked ingest an
		// undelivered batch never touched the dead node's WAL, so the
		// retry cannot double count.
		if rc.cfg.Members.MarkDead(id) {
			rc.stats.DeadMarked++
			rc.cfg.Logf("cluster route: marked %s dead after %v", id, err)
		}
		reroute("delivery failed")
	case res.NotOwner:
		// The node disowns the batch under its own view (draining, or it
		// saw a death we have not). Fold that into our view — otherwise
		// the re-split consults our stale ring and targets the same node
		// forever.
		rc.stats.NotOwnerRetries++
		rc.cfg.Members.MarkDraining(id)
		reroute(fmt.Sprintf("not owner, moved to %s", res.Owner))
	case res.Error != "":
		rc.fail(fmt.Errorf("cluster: node %s rejected batch: %s", id, res.Error))
	default:
		rc.stats.Delivered += uint64(res.Accepted)
		rc.stats.Batches++
	}
}

// postBatch sends one encoded batch with transport retries. A non-2xx
// status or connection error after the retry budget returns an error;
// decoded verdicts (including not-owner) return normally.
func (rc *RouteClient) postBatch(member Member, ms []core.Measurement) (ingest.BatchResult, error) {
	body := AppendMeasurements(nil, ms)
	var lastErr error
	for attempt := 0; attempt <= rc.cfg.Retries; attempt++ {
		if attempt > 0 {
			rc.stats.Retries++
			time.Sleep(rc.cfg.RetryDelay)
		}
		resp, err := rc.cfg.HTTPClient.Post(member.URL+"/cluster/ingest", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		var res ingest.BatchResult
		derr := json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && derr == nil {
			return res, nil
		}
		if resp.StatusCode == http.StatusBadRequest {
			// The node decoded our batch and refused it wholesale; a
			// retry cannot fix an encoding problem.
			return res, nil
		}
		lastErr = fmt.Errorf("cluster: %s: HTTP %d", member.URL, resp.StatusCode)
	}
	return ingest.BatchResult{}, lastErr
}
