package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"tlsfof/internal/store"
	"tlsfof/internal/telemetry"
)

// testCluster is an in-process cluster over real TCP listeners — the
// node runtime exactly as reportd mounts it, minus the process
// boundary.
type testCluster struct {
	t          *testing.T
	members    []Member
	nodes      map[string]*Node
	servers    map[string]*http.Server
	registries map[string]*telemetry.Registry
}

func startTestCluster(t *testing.T, ids []string, tweak func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:          t,
		nodes:      make(map[string]*Node),
		servers:    make(map[string]*http.Server),
		registries: make(map[string]*telemetry.Registry),
	}
	listeners := make(map[string]net.Listener)
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[id] = ln
		tc.members = append(tc.members, Member{ID: id, URL: "http://" + ln.Addr().String()})
	}
	for _, id := range ids {
		reg := telemetry.NewRegistry()
		cfg := Config{
			ID:           id,
			Members:      tc.members,
			DataDir:      filepath.Join(t.TempDir(), id),
			Shards:       2,
			SegmentBytes: 4 << 10,
			AckTimeout:   5 * time.Second,
			PollInterval: 2 * time.Millisecond,
			LongPoll:     20 * time.Millisecond,
			Registry:     reg,
			Logf:         t.Logf,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		n, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		srv := &http.Server{Handler: n.Handler()}
		go srv.Serve(listeners[id])
		tc.nodes[id] = n
		tc.servers[id] = srv
		tc.registries[id] = reg
	}
	t.Cleanup(func() {
		for _, srv := range tc.servers {
			srv.Close()
		}
		for _, n := range tc.nodes {
			n.Close()
		}
	})
	return tc
}

func (tc *testCluster) url(id string) string {
	for _, m := range tc.members {
		if m.ID == id {
			return m.URL
		}
	}
	tc.t.Fatalf("no member %q", id)
	return ""
}

func (tc *testCluster) route(batch int) *RouteClient {
	tc.t.Helper()
	view, err := NewMembership(tc.members, 0)
	if err != nil {
		tc.t.Fatal(err)
	}
	rc, err := NewRouteClient(RouteConfig{Members: view, BatchSize: batch, RetryDelay: time.Millisecond, Logf: tc.t.Logf})
	if err != nil {
		tc.t.Fatal(err)
	}
	return rc
}

func (tc *testCluster) post(id, path string) {
	tc.t.Helper()
	resp, err := http.Post(tc.url(id)+path, "", nil)
	if err != nil {
		tc.t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tc.t.Fatalf("POST %s to %s: HTTP %d", path, id, resp.StatusCode)
	}
}

func (tc *testCluster) get(id, path string) ([]byte, int) {
	tc.t.Helper()
	resp, err := http.Get(tc.url(id) + path)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatal(err)
	}
	return body, resp.StatusCode
}

func metricValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

// TestClusterReplicationAndRecovery is the two-node core of the kill
// battery: every acked batch must be durable on the replica before its
// ack, so killing the primary and rebuilding it from the survivor's
// replica WALs reproduces its tables byte-identically.
func TestClusterReplicationAndRecovery(t *testing.T) {
	tc := startTestCluster(t, []string{"a", "b"}, nil)
	a, b := tc.nodes["a"], tc.nodes["b"]

	ms := testMeasurements(400, 7)
	rc := tc.route(32)
	for _, m := range ms {
		rc.Ingest(m)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	st := rc.Stats()
	if st.Delivered != 400 || st.Lost != 0 {
		t.Fatalf("route stats %+v, want 400 delivered, 0 lost", st)
	}
	if metricValue(t, tc.registries["b"], "repl_frames_applied_total") == 0 {
		t.Fatal("b applied no replica frames while a ingested")
	}
	if metricValue(t, tc.registries["a"], "repl_ack_timeouts_total") != 0 {
		t.Fatal("healthy cluster acked in degraded mode")
	}

	// The state a's tables hold the instant it dies.
	aTables := a.MergeLocal().AppendSnapshot(nil)

	a.Kill()
	tc.post("b", "/cluster/dead?node=a")
	if _, status := tc.get("a", "/cluster/status"); status != http.StatusServiceUnavailable {
		t.Fatalf("killed node answered HTTP %d", status)
	}
	if err := a.IngestBatch(ms[:1]); err != ErrNodeKilled {
		t.Fatalf("killed node ingest returned %v", err)
	}

	// The survivor rebuilds a's shards from its replica WALs over HTTP.
	body, status := tc.get("b", "/cluster/replica?node=a")
	if status != http.StatusOK {
		t.Fatalf("replica recovery: HTTP %d: %s", status, body)
	}
	if !bytes.Equal(body, aTables) {
		t.Fatalf("recovered replica differs from a's own tables (%d vs %d bytes)", len(body), len(aTables))
	}
	recovered, err := store.DecodeSnapshot(body)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Totals().Tested == 0 {
		t.Fatal("replica recovery produced an empty store")
	}

	// Cross-node merge == sequential control, byte for byte.
	control := store.New(0)
	for _, m := range ms {
		control.Ingest(m)
	}
	got := canonSnapshot(b.MergeLocal(), recovered)
	want := canonSnapshot(control)
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster merge differs from sequential control (%d vs %d bytes)", len(got), len(want))
	}
}

// TestClusterDrainReroutes: a draining node refuses new writes with a
// not-owner verdict; the router folds the verdict into its view and the
// full stream still lands exactly once.
func TestClusterDrainReroutes(t *testing.T) {
	tc := startTestCluster(t, []string{"a", "b"}, nil)
	a, b := tc.nodes["a"], tc.nodes["b"]

	ms := testMeasurements(200, 11)
	rc := tc.route(16)
	for _, m := range ms[:100] {
		rc.Ingest(m)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}

	tc.post("a", "/cluster/drain")
	// The orchestrator broadcasts the drain; without it, b's stale ring
	// bounces a's former hosts straight back at a.
	tc.post("b", "/cluster/draining?node=a")
	var status Status
	body, _ := tc.get("a", "/cluster/status")
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if status.State != "draining" {
		t.Fatalf("a reports state %q after drain", status.State)
	}

	for _, m := range ms[100:] {
		rc.Ingest(m)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	st := rc.Stats()
	if st.Delivered != 200 || st.Lost != 0 {
		t.Fatalf("route stats %+v, want 200 delivered, 0 lost", st)
	}
	if st.NotOwnerRetries == 0 {
		t.Fatal("drain produced no not-owner verdicts; the reroute path went untested")
	}
	if metricValue(t, tc.registries["a"], "cluster_ingest_not_owner_total") == 0 {
		t.Fatal("a's not-owner counter stayed at zero through its drain")
	}

	control := store.New(0)
	for _, m := range ms {
		control.Ingest(m)
	}
	got := canonSnapshot(a.MergeLocal(), b.MergeLocal())
	if !bytes.Equal(got, canonSnapshot(control)) {
		t.Fatal("drained cluster merge differs from sequential control")
	}
}

// TestClusterTransportDeathReroutes: when a node stops answering
// entirely, the router marks it dead and re-splits; nothing is lost and
// nothing is double-counted, because an undelivered batch never touched
// the dead node's WAL.
func TestClusterTransportDeathReroutes(t *testing.T) {
	tc := startTestCluster(t, []string{"a", "b"}, nil)
	b := tc.nodes["b"]

	ms := testMeasurements(200, 13)
	rc := tc.route(16)
	for _, m := range ms[:100] {
		rc.Ingest(m)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}

	// a vanishes at the TCP level; the orchestrator tells b.
	tc.servers["a"].Close()
	b.Members().MarkDead("a")

	for _, m := range ms[100:] {
		rc.Ingest(m)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	st := rc.Stats()
	if st.Delivered != 200 || st.Lost != 0 {
		t.Fatalf("route stats %+v, want 200 delivered, 0 lost", st)
	}
	if st.DeadMarked != 1 {
		t.Fatalf("route stats %+v, want exactly one dead-marking", st)
	}

	// The survivor's own data plus its replica of a covers everything.
	rec, err := b.RecoverReplica("a")
	if err != nil {
		t.Fatal(err)
	}
	control := store.New(0)
	for _, m := range ms {
		control.Ingest(m)
	}
	got := canonSnapshot(b.MergeLocal(), rec)
	if !bytes.Equal(got, canonSnapshot(control)) {
		t.Fatal("post-death cluster merge differs from sequential control")
	}
}

// TestClusterDegradedAck: with no follower running, the ack wait times
// out and ingest proceeds in degraded mode — counted, never deadlocked.
func TestClusterDegradedAck(t *testing.T) {
	reg := telemetry.NewRegistry()
	members := []Member{{ID: "a", URL: "http://127.0.0.1:1"}, {ID: "b", URL: "http://127.0.0.1:2"}}
	n, err := Open(Config{
		ID: "a", Members: members, DataDir: t.TempDir(),
		Shards: 2, AckTimeout: 20 * time.Millisecond, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// b exists and is alive in the view, but nothing tails a's WAL.
	start := time.Now()
	if err := n.IngestBatch(testMeasurements(8, 17)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("ingest returned in %v; the ack wait never happened", elapsed)
	}
	if metricValue(t, reg, "repl_ack_timeouts_total") == 0 {
		t.Fatal("degraded ack left no trace in the timeout counter")
	}
	if lag := metricValue(t, reg, "repl_lag_frames"); lag == 0 {
		t.Fatal("replication lag gauge reads zero with an absent follower")
	}
}

// TestClusterRestartRecovers: a cleanly closed node reopens from its own
// WALs with identical tables, and the pinned manifest refuses a shard
// count change.
func TestClusterRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	members := []Member{{ID: "solo", URL: "http://127.0.0.1:1"}}
	open := func(shards int) (*Node, error) {
		return Open(Config{ID: "solo", Members: members, DataDir: dir, Shards: shards, SegmentBytes: 4 << 10})
	}
	n, err := open(2)
	if err != nil {
		t.Fatal(err)
	}
	ms := testMeasurements(150, 19)
	if err := n.IngestBatch(ms); err != nil {
		t.Fatal(err)
	}
	want := n.MergeLocal().AppendSnapshot(nil)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := open(4); err == nil {
		t.Fatal("shard-count change slipped past the pinned manifest")
	}
	n2, err := open(2)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if got := n2.MergeLocal().AppendSnapshot(nil); !bytes.Equal(got, want) {
		t.Fatal("restarted node's tables differ from the pre-restart tables")
	}
}

// TestClusterStatusDocument sanity-checks the manifest fleetctl routes
// against.
func TestClusterStatusDocument(t *testing.T) {
	tc := startTestCluster(t, []string{"a", "b", "c"}, nil)
	body, status := tc.get("b", "/cluster/status")
	if status != http.StatusOK {
		t.Fatalf("status endpoint: HTTP %d", status)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "b" || st.Shards != 2 || len(st.Members) != 3 {
		t.Fatalf("status document %+v", st)
	}
	// Successor placement is not a permutation — one node may hold two
	// replicas and another zero — but cluster-wide every node's WAL is
	// tailed: nodes × shards streams in total, none self-directed.
	streams := 0
	for _, id := range []string{"a", "b", "c"} {
		doc, _ := tc.get(id, "/cluster/status")
		var s Status
		if err := json.Unmarshal(doc, &s); err != nil {
			t.Fatal(err)
		}
		for _, r := range s.Replicas {
			if r.Source == id {
				t.Fatalf("%s reports following itself: %+v", id, r)
			}
			streams++
		}
	}
	if want := 3 * st.Shards; streams != want {
		t.Fatalf("cluster reports %d replica streams, want %d", streams, want)
	}
	_ = fmt.Sprintf("%v", st) // Status must remain printable for fleetctl logs
}
