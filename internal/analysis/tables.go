// Package analysis renders the paper's evaluation artifacts — Tables 1–8,
// the §5.2 negligent-behavior report, and the Figure 7 prevalence heatmap —
// from a populated measurement store. Each renderer prints the same rows
// the paper reports, so a study run and the PDF can be compared
// side by side.
package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tlsfof/internal/adsim"
	"tlsfof/internal/classify"
	"tlsfof/internal/geo"
	"tlsfof/internal/hostdb"
	"tlsfof/internal/store"
)

// line prints a table rule of the given width.
func line(w io.Writer, width int) {
	fmt.Fprintln(w, strings.Repeat("-", width))
}

// Table1 renders the second-study probe host list grouped by category
// (paper Table 1).
func Table1(w io.Writer, hosts []hostdb.Host) error {
	byCat := make(map[hostdb.Category][]string)
	for _, h := range hosts {
		if h.Category == hostdb.Authors {
			continue
		}
		byCat[h.Category] = append(byCat[h.Category], h.Name)
	}
	fmt.Fprintln(w, "Table 1: Second Study Websites Probed")
	line(w, 64)
	for _, cat := range []hostdb.Category{hostdb.Popular, hostdb.Business, hostdb.Pornographic} {
		fmt.Fprintf(w, "%-14s %s\n", cat.String()+":", strings.Join(byCat[cat], ", "))
	}
	return nil
}

// Table2 renders campaign statistics (paper Table 2).
func Table2(w io.Writer, outcomes []adsim.Outcome, total adsim.Outcome) error {
	fmt.Fprintln(w, "Table 2: Campaign Statistics")
	line(w, 58)
	fmt.Fprintf(w, "%-12s %12s %8s %12s\n", "Campaign", "Impressions", "Clicks", "Cost")
	line(w, 58)
	for _, o := range outcomes {
		fmt.Fprintf(w, "%-12s %12d %8d %11.2f$\n", o.Campaign, o.Impressions, o.Clicks, o.CostDollars())
	}
	line(w, 58)
	fmt.Fprintf(w, "%-12s %12d %8d %11.2f$\n", "Total", total.Impressions, total.Clicks, total.CostDollars())
	return nil
}

// countryName resolves a display name for a country row.
func countryName(gdb *geo.DB, code string) string {
	if gdb != nil {
		if c, ok := gdb.Country(code); ok {
			return c.Name
		}
	}
	if code == "??" {
		return "(unresolved)"
	}
	return code
}

// CountryTable renders Tables 3 and 7: per-country tested/proxied rows,
// top-n plus an Other row plus the total. order selects Table 3's
// proxied-descending (first study) or Table 7's tested-descending layout.
func CountryTable(w io.Writer, db *store.DB, gdb *geo.DB, title string, order store.CountryOrder, topN int) error {
	rows := db.ByCountry(order)
	totals := db.Totals()
	fmt.Fprintln(w, title)
	line(w, 66)
	fmt.Fprintf(w, "%4s %-20s %9s %12s %9s\n", "Rank", "Country", "Proxied", "Total", "Percent")
	line(w, 66)
	shown := 0
	var otherTested, otherProxied, otherCountries int
	for _, row := range rows {
		if shown < topN {
			fmt.Fprintf(w, "%4d %-20s %9d %12d %8.2f%%\n",
				shown+1, countryName(gdb, row.Code), row.Proxied, row.Tested, 100*row.Rate())
			shown++
			continue
		}
		otherTested += row.Tested
		otherProxied += row.Proxied
		otherCountries++
	}
	if otherCountries > 0 {
		pct := 0.0
		if otherTested > 0 {
			pct = 100 * float64(otherProxied) / float64(otherTested)
		}
		fmt.Fprintf(w, "%4s %-20s %9d %12d %8.2f%%\n", "",
			fmt.Sprintf("Other (%d)", otherCountries), otherProxied, otherTested, pct)
	}
	line(w, 66)
	fmt.Fprintf(w, "%4s %-20s %9d %12d %8.2f%%\n", "", "Total",
		totals.Proxied, totals.Tested, 100*totals.Rate())
	return nil
}

// Table3 is the first study's by-country table (proxied-descending).
func Table3(w io.Writer, db *store.DB, gdb *geo.DB) error {
	return CountryTable(w, db, gdb, "Table 3: Proxied connections by country (1st study)", store.OrderByProxied, 20)
}

// Table7 is the second study's by-country table (tested-descending).
func Table7(w io.Writer, db *store.DB, gdb *geo.DB) error {
	return CountryTable(w, db, gdb, "Table 7: Connections tested by country (2nd study)", store.OrderByTested, 20)
}

// Table4 renders the Issuer Organization histogram (paper Table 4).
func Table4(w io.Writer, db *store.DB, topN int) error {
	entries := db.IssuerOrgTop(0)
	fmt.Fprintln(w, "Table 4: Issuer Organization field values")
	line(w, 56)
	fmt.Fprintf(w, "%4s %-38s %11s\n", "Rank", "Issuer Organization", "Connections")
	line(w, 56)
	var other, otherDistinct int
	for i, e := range entries {
		if i < topN {
			fmt.Fprintf(w, "%4d %-38s %11d\n", i+1, e.Key, e.Count)
			continue
		}
		other += e.Count
		otherDistinct++
	}
	if otherDistinct > 0 {
		fmt.Fprintf(w, "%4s %-38s %11d\n", "", fmt.Sprintf("Other (%d)", otherDistinct), other)
	}
	return nil
}

// ClassificationTable renders Tables 5 and 6: proxied connections per
// claimed-issuer category, in the paper's row order.
func ClassificationTable(w io.Writer, db *store.DB, title string) error {
	counts := db.CategoryCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Fprintln(w, title)
	line(w, 56)
	fmt.Fprintf(w, "%-28s %12s %9s\n", "Proxy Type", "Connections", "Percent")
	line(w, 56)
	for _, cat := range classify.AllCategories {
		n := counts[cat]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(n) / float64(total)
		}
		fmt.Fprintf(w, "%-28s %12d %8.2f%%\n", cat.String(), n, pct)
	}
	return nil
}

// Table5 is the first study's classification table.
func Table5(w io.Writer, db *store.DB) error {
	return ClassificationTable(w, db, "Table 5: Classification of claimed issuer in 1st study")
}

// Table6 is the second study's classification table.
func Table6(w io.Writer, db *store.DB) error {
	return ClassificationTable(w, db, "Table 6: Classification of claimed issuer in 2nd study")
}

// Table8 renders the by-host-type breakdown (paper Table 8).
func Table8(w io.Writer, db *store.DB) error {
	byCat := db.ByHostCategory()
	fmt.Fprintln(w, "Table 8: Proxied connection breakdown by host type")
	line(w, 64)
	fmt.Fprintf(w, "%-14s %12s %9s %16s\n", "Website Type", "Connections", "Proxied", "Percent Proxied")
	line(w, 64)
	for _, cat := range hostdb.AllCategories {
		a := byCat[cat]
		fmt.Fprintf(w, "%-14s %12d %9d %15.2f%%\n", cat, a.Tested, a.Proxied, 100*a.Rate())
	}
	return nil
}

// Negligence renders the §5.2 negligent/suspicious behavior report.
func Negligence(w io.Writer, db *store.DB) error {
	n := db.Negligence()
	pct := func(k int) float64 {
		if n.Proxied == 0 {
			return 0
		}
		return 100 * float64(k) / float64(n.Proxied)
	}
	fmt.Fprintln(w, "Negligent and suspicious behavior (§5.2)")
	line(w, 66)
	fmt.Fprintf(w, "%-46s %8s %8s\n", "Behavior", "Count", "Percent")
	line(w, 66)
	rows := []struct {
		label string
		count int
	}{
		{"Substitute key downgraded to 1024 bits", n.Key1024},
		{"Substitute key downgraded to 512 bits", n.Key512},
		{"Substitute key upgraded to 2432 bits", n.Key2432},
		{"Substitute certificate signed with MD5", n.MD5Signed},
		{"MD5 signature AND 512-bit key", n.MD5And512},
		{"Full-strength substitute (>=2048-bit)", n.FullStrength},
		{"Claims authoritative issuer without its key", n.IssuerCopied},
		{"Subject does not match probed host", n.SubjectDrift},
		{"Null/blank issuer fields", n.NullIssuer},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-46s %8d %7.2f%%\n", r.label, r.count, pct(r.count))
	}
	line(w, 66)
	fmt.Fprintf(w, "%-46s %8d\n", "Proxied connections (denominator)", n.Proxied)
	return nil
}

// Products renders the per-product connection/IP/country diversity view
// backing the §6.4 kowsar-vs-DSP analysis.
func Products(w io.Writer, db *store.DB, topN int) error {
	prods := db.Products()
	fmt.Fprintln(w, "Claimed products: connection and origin diversity (§6.4)")
	line(w, 70)
	fmt.Fprintf(w, "%-38s %11s %8s %9s\n", "Product", "Connections", "IPs", "Countries")
	line(w, 70)
	for i, p := range prods {
		if topN > 0 && i >= topN {
			break
		}
		fmt.Fprintf(w, "%-38s %11d %8d %9d\n", p.Name, p.Connections, p.DistinctIPs, p.Countries)
	}
	return nil
}

// SortedCategoryCounts returns (category, count) pairs in table order,
// for tests and programmatic consumers.
func SortedCategoryCounts(db *store.DB) []struct {
	Category classify.Category
	Count    int
} {
	counts := db.CategoryCounts()
	out := make([]struct {
		Category classify.Category
		Count    int
	}, 0, len(classify.AllCategories))
	for _, cat := range classify.AllCategories {
		out = append(out, struct {
			Category classify.Category
			Count    int
		}{cat, counts[cat]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out
}
