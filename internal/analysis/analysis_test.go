package analysis

import (
	"strings"
	"testing"
	"time"

	"tlsfof/internal/adsim"
	"tlsfof/internal/classify"
	"tlsfof/internal/core"
	"tlsfof/internal/geo"
	"tlsfof/internal/hostdb"
	"tlsfof/internal/store"
)

// seededStore builds a small store with a known composition.
func seededStore() (*store.DB, *geo.DB) {
	db := store.New(0)
	gdb := geo.NewDB()
	add := func(country string, ip uint32, proxied bool, issuer string, cat classify.Category, keyBits int, hostCat hostdb.Category) {
		m := core.Measurement{
			Time:         time.Date(2014, 1, 10, 12, 0, 0, 0, time.UTC),
			ClientIP:     ip,
			Country:      country,
			Host:         "tlsresearch.byu.edu",
			HostCategory: hostCat,
			Campaign:     "Global",
		}
		if proxied {
			m.Obs = core.Observation{
				Proxied: true, IssuerOrg: issuer, Category: cat,
				KeyBits: keyBits, WeakKey: keyBits < 2048, ProductName: issuer,
			}
		} else {
			m.Obs = core.Observation{KeyBits: 2048}
		}
		db.Ingest(m)
	}
	for i := uint32(0); i < 200; i++ {
		add("US", 100+i, false, "", 0, 2048, hostdb.Authors)
	}
	for i := uint32(0); i < 50; i++ {
		add("FR", 300+i, false, "", 0, 2048, hostdb.Popular)
	}
	add("US", 1, true, "Bitdefender", classify.BusinessPersonalFirewall, 1024, hostdb.Authors)
	add("US", 2, true, "Bitdefender", classify.BusinessPersonalFirewall, 1024, hostdb.Authors)
	add("FR", 3, true, "Sendori Inc", classify.Malware, 1024, hostdb.Popular)
	return db, gdb
}

func render(t *testing.T, f func(*strings.Builder) error) string {
	t.Helper()
	var b strings.Builder
	if err := f(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTable1Render(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Table1(b, hostdb.SecondStudyHosts()) })
	for _, want := range []string{"qq.com", "airdroid.com", "pornclipstv.com", "Popular", "Business", "Pornographic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Render(t *testing.T) {
	outs := []adsim.Outcome{
		{Campaign: "Global", Impressions: 3285598, Clicks: 5424, CostCents: 402178},
		{Campaign: "China", Country: "CN", Impressions: 689233, Clicks: 652, CostCents: 40141},
	}
	total := adsim.Outcome{Campaign: "Total", Impressions: 3974831, Clicks: 6076, CostCents: 442319}
	out := render(t, func(b *strings.Builder) error { return Table2(b, outs, total) })
	for _, want := range []string{"Global", "China", "3285598", "Total", "4021.78"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestCountryTableRender(t *testing.T) {
	db, gdb := seededStore()
	out := render(t, func(b *strings.Builder) error { return Table3(b, db, gdb) })
	if !strings.Contains(out, "United States") || !strings.Contains(out, "France") {
		t.Fatalf("country names missing:\n%s", out)
	}
	if !strings.Contains(out, "Total") {
		t.Fatal("total row missing")
	}
	// US has 2 proxied, FR 1 — proxied ordering puts US first.
	usIdx := strings.Index(out, "United States")
	frIdx := strings.Index(out, "France")
	if usIdx > frIdx {
		t.Fatal("Table 3 not ordered by proxied count")
	}
}

func TestTable4Render(t *testing.T) {
	db, _ := seededStore()
	out := render(t, func(b *strings.Builder) error { return Table4(b, db, 20) })
	if !strings.Contains(out, "Bitdefender") || !strings.Contains(out, "Sendori Inc") {
		t.Fatalf("issuers missing:\n%s", out)
	}
}

func TestClassificationTableRender(t *testing.T) {
	db, _ := seededStore()
	out := render(t, func(b *strings.Builder) error { return Table5(b, db) })
	// Every taxonomy row appears, even zero ones (as the paper prints).
	for _, cat := range classify.AllCategories {
		if !strings.Contains(out, cat.String()) {
			t.Errorf("category %q missing:\n%s", cat, out)
		}
	}
	if !strings.Contains(out, "66.67%") { // 2 of 3 proxied are firewall
		t.Errorf("percent missing:\n%s", out)
	}
}

func TestTable8Render(t *testing.T) {
	db, _ := seededStore()
	out := render(t, func(b *strings.Builder) error { return Table8(b, db) })
	for _, cat := range hostdb.AllCategories {
		if !strings.Contains(out, cat.String()) {
			t.Errorf("host type %q missing", cat)
		}
	}
}

func TestNegligenceRender(t *testing.T) {
	db, _ := seededStore()
	out := render(t, func(b *strings.Builder) error { return Negligence(b, db) })
	if !strings.Contains(out, "1024 bits") || !strings.Contains(out, "MD5") {
		t.Fatalf("negligence rows missing:\n%s", out)
	}
}

func TestProductsRender(t *testing.T) {
	db, _ := seededStore()
	out := render(t, func(b *strings.Builder) error { return Products(b, db, 10) })
	if !strings.Contains(out, "Bitdefender") {
		t.Fatalf("products missing:\n%s", out)
	}
}

func TestFigure7ASCII(t *testing.T) {
	db, gdb := seededStore()
	out := render(t, func(b *strings.Builder) error { return Figure7ASCII(b, db, gdb) })
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "US") {
		t.Fatalf("figure render:\n%s", out)
	}
}

func TestFigure7SVG(t *testing.T) {
	db, gdb := seededStore()
	out := render(t, func(b *strings.Builder) error { return Figure7SVG(b, db, gdb) })
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(out, "US") || !strings.Contains(out, "rect") {
		t.Fatal("SVG missing country cells")
	}
}

func TestHeatmapDataFiltersAndSorts(t *testing.T) {
	db, gdb := seededStore()
	cells := HeatmapData(db, gdb, 100)
	// Only US (201 tested) and FR (... 51) — with minTested 100 only US.
	if len(cells) != 1 || cells[0].Code != "US" {
		t.Fatalf("cells = %+v", cells)
	}
	all := HeatmapData(db, gdb, 1)
	if len(all) != 2 {
		t.Fatalf("unfiltered cells = %d", len(all))
	}
	if all[0].Rate < all[1].Rate {
		t.Fatal("cells not rate-descending")
	}
}

func TestHeatColorGradient(t *testing.T) {
	cold := heatColor(0)
	hot := heatColor(1)
	if cold == hot {
		t.Fatal("gradient endpoints equal")
	}
	if heatColor(-1) != cold || heatColor(2) != hot {
		t.Fatal("gradient not clamped")
	}
}

func TestBaselineComparisonRender(t *testing.T) {
	var b strings.Builder
	if err := BaselineComparison(&b, 2861180, 11764, "www.facebook.com", 2800000, 5700); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0.41%") || !strings.Contains(out, "0.20%") {
		t.Fatalf("rates missing:\n%s", out)
	}
	if !strings.Contains(out, "2.0") { // ratio ≈ 2x
		t.Fatalf("ratio missing:\n%s", out)
	}
}
