package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tlsfof/internal/store"
	"tlsfof/internal/tlswire"
)

// auditColumns are the grid column headers, aligned with
// store.AuditDefects (untrusted-root shortened to fit).
var auditColumns = []string{"clean", "expired", "self-signed", "wrong-name", "untrusted", "revoked"}

// auditByProduct groups cells into per-product defect maps plus the
// sorted product-name order — the single deterministic layout both
// renderers share.
func auditByProduct(cells []store.AuditCell) ([]string, map[string]map[string]store.AuditCell) {
	grid := make(map[string]map[string]store.AuditCell)
	var names []string
	for _, c := range cells {
		row, ok := grid[c.Product]
		if !ok {
			row = make(map[string]store.AuditCell)
			grid[c.Product] = row
			names = append(names, c.Product)
		}
		row[c.Defect] = c
	}
	sort.Strings(names)
	return names, grid
}

// AuditGrade derives one product's letter grade from its battery row,
// following the Waked et al. severity ordering: trusting an untrusted or
// self-signed origin is a full compromise (F); accepting a wrong name
// lets any certificate holder impersonate any site (D); accepting
// expired or revoked certificates is negligence with a narrower window
// (C). Offering a downgraded version or weak ciphers upstream each cost
// one letter; a product that cannot even reach a clean origin fails
// outright.
func AuditGrade(row map[string]store.AuditCell) byte {
	accepts := func(d string) bool { c, ok := row[d]; return ok && c.Accepted }
	grade := byte('A')
	switch {
	case accepts("untrusted-root") || accepts("self-signed"):
		grade = 'F'
	case accepts("wrong-name"):
		grade = 'D'
	case accepts("expired") || accepts("revoked"):
		grade = 'C'
	}
	drop := func() {
		if grade < 'F' {
			grade++
		}
		if grade == 'E' {
			grade = 'F'
		}
	}
	if clean, ok := row["clean"]; ok {
		if !clean.Accepted {
			return 'F'
		}
		if clean.OfferedVersion != 0 && clean.OfferedVersion < tlswire.VersionTLS12 {
			drop()
		}
		if clean.WeakCiphers {
			drop()
		}
	}
	return grade
}

// AuditGrid renders the raw per-(product, defect) verdict matrix.
// Accepting a defect prints in caps — the negligent cells are the ones
// that should jump out — while rejecting prints lowercase; the clean
// control prints ok/BROKEN.
func AuditGrid(w io.Writer, cells []store.AuditCell) error {
	names, grid := auditByProduct(cells)
	const width = 112
	fmt.Fprintln(w, "Audit Grid: upstream-defect acceptance by product")
	line(w, width)
	fmt.Fprintf(w, "%-40s", "Product")
	for _, col := range auditColumns {
		fmt.Fprintf(w, " %-11s", col)
	}
	fmt.Fprintln(w)
	line(w, width)
	for _, name := range names {
		row := grid[name]
		fmt.Fprintf(w, "%-40s", name)
		for _, defect := range store.AuditDefects {
			c, ok := row[defect]
			verdict := "-"
			switch {
			case !ok:
			case defect == "clean" && c.Accepted:
				verdict = "ok"
			case defect == "clean":
				verdict = "BROKEN"
			case c.Accepted:
				verdict = "ACCEPT"
			default:
				verdict = "reject"
			}
			fmt.Fprintf(w, " %-11s", verdict)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// AuditCards renders the per-product report card: letter grade, whether
// the product validates at all, its upstream offer, and the defect list
// it accepts.
func AuditCards(w io.Writer, cells []store.AuditCell) error {
	names, grid := auditByProduct(cells)
	const width = 126
	fmt.Fprintln(w, "Audit Report Cards (Waked et al. upstream-validation axes)")
	line(w, width)
	fmt.Fprintf(w, "%-40s %-5s %-9s %-9s %-5s %-5s %s\n",
		"Product", "Grade", "Validates", "Offer", "Relay", "Weak", "Accepts")
	line(w, width)
	for _, name := range names {
		row := grid[name]
		var accepted []string
		validated := false
		offer := "-"
		relay, weak := "no", "no"
		for _, defect := range store.AuditDefects {
			c, ok := row[defect]
			if !ok {
				continue
			}
			if c.Validated {
				validated = true
			}
			if defect == "clean" {
				if c.OfferedVersion != 0 {
					offer = tlswire.VersionName(c.OfferedVersion)
				}
				if c.RelayedVersion {
					relay = "yes"
				}
				if c.WeakCiphers {
					weak = "yes"
				}
				continue
			}
			if c.Accepted {
				accepted = append(accepted, defect)
			}
		}
		acceptsStr := "none"
		if len(accepted) > 0 {
			acceptsStr = strings.Join(accepted, "+")
		}
		validatesStr := "no"
		if validated {
			validatesStr = "yes"
		}
		fmt.Fprintf(w, "%-40s   %c   %-9s %-9s %-5s %-5s %s\n",
			name, AuditGrade(row), validatesStr, offer, relay, weak, acceptsStr)
	}
	return nil
}

// AuditReport renders the full audit artifact — report cards, a blank
// line, then the raw grid. cmd/audit, reportd, and the conformance test
// all go through here so the three outputs are byte-identical.
func AuditReport(w io.Writer, cells []store.AuditCell) error {
	if err := AuditCards(w, cells); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return AuditGrid(w, cells)
}
