package analysis

import (
	"bytes"
	"strings"
	"testing"

	"tlsfof/internal/store"
	"tlsfof/internal/tlswire"
)

// row builds a battery row for grading tests: accepted lists the defects
// the product tolerates; the clean cell is always present and accepted.
func row(clean store.AuditCell, accepted ...string) map[string]store.AuditCell {
	m := map[string]store.AuditCell{"clean": clean}
	for _, d := range store.AuditDefects[1:] {
		c := store.AuditCell{Defect: d}
		for _, a := range accepted {
			if a == d {
				c.Accepted = true
			}
		}
		m[d] = c
	}
	return m
}

func cleanCell(version uint16, weak bool) store.AuditCell {
	return store.AuditCell{Defect: "clean", Accepted: true, OfferedVersion: version, WeakCiphers: weak}
}

func TestAuditGrade(t *testing.T) {
	strong := cleanCell(tlswire.VersionTLS12, false)
	cases := []struct {
		name string
		row  map[string]store.AuditCell
		want byte
	}{
		{"rejects everything", row(strong), 'A'},
		{"accepts expired", row(strong, "expired"), 'C'},
		{"accepts revoked", row(strong, "revoked"), 'C'},
		{"accepts wrong-name", row(strong, "wrong-name"), 'D'},
		{"wrong-name trumps expired", row(strong, "wrong-name", "expired"), 'D'},
		{"accepts self-signed", row(strong, "self-signed"), 'F'},
		{"accepts untrusted-root", row(strong, "untrusted-root"), 'F'},
		{"untrusted trumps all", row(strong, "untrusted-root", "expired", "wrong-name"), 'F'},
		{"downgraded offer costs a letter", row(cleanCell(tlswire.VersionTLS10, false)), 'B'},
		{"weak ciphers cost a letter", row(cleanCell(tlswire.VersionTLS12, true)), 'B'},
		{"both modifiers", row(cleanCell(tlswire.VersionTLS10, true)), 'C'},
		{"modifiers skip E", row(cleanCell(tlswire.VersionTLS10, true), "wrong-name"), 'F'},
		{"modifier on F stays F", row(cleanCell(tlswire.VersionTLS10, true), "untrusted-root"), 'F'},
		{"clean rejected fails outright", map[string]store.AuditCell{
			"clean": {Defect: "clean", Accepted: false},
		}, 'F'},
		{"empty row is ungraded A", map[string]store.AuditCell{}, 'A'},
	}
	for _, tc := range cases {
		if got := AuditGrade(tc.row); got != tc.want {
			t.Errorf("%s: grade %c, want %c", tc.name, got, tc.want)
		}
	}
}

func battery(t *testing.T) []store.AuditCell {
	t.Helper()
	s := store.NewAuditStore()
	s.Record(store.AuditCell{Product: "Strict", Defect: "clean", Accepted: true, Validated: true,
		OfferedVersion: tlswire.VersionTLS12})
	for _, d := range store.AuditDefects[1:] {
		s.Record(store.AuditCell{Product: "Strict", Defect: d, Accepted: false, Validated: true})
	}
	s.Record(store.AuditCell{Product: "Sloppy", Defect: "clean", Accepted: true,
		OfferedVersion: tlswire.VersionTLS10, WeakCiphers: true, RelayedVersion: true})
	for _, d := range store.AuditDefects[1:] {
		s.Record(store.AuditCell{Product: "Sloppy", Defect: d, Accepted: true})
	}
	return s.Cells()
}

func TestAuditGridRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := AuditGrid(&buf, battery(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Audit Grid", "Strict", "Sloppy", "ACCEPT", "reject", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid output missing %q:\n%s", want, out)
		}
	}
	// Strict rejects every defect: its row has no ACCEPT.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Strict") && strings.Contains(line, "ACCEPT") {
			t.Errorf("strict row shows ACCEPT: %q", line)
		}
		if strings.HasPrefix(line, "Sloppy") && strings.Contains(line, "reject") {
			t.Errorf("sloppy row shows reject: %q", line)
		}
	}
}

func TestAuditCardsRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := AuditCards(&buf, battery(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var strictLine, sloppyLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Strict") {
			strictLine = line
		}
		if strings.HasPrefix(line, "Sloppy") {
			sloppyLine = line
		}
	}
	if strictLine == "" || sloppyLine == "" {
		t.Fatalf("cards output missing product rows:\n%s", out)
	}
	for _, want := range []string{"A", "yes", "TLSv1.2", "none"} {
		if !strings.Contains(strictLine, want) {
			t.Errorf("strict card missing %q: %q", want, strictLine)
		}
	}
	for _, want := range []string{"F", "TLSv1.0", "yes", "expired+self-signed+wrong-name+untrusted-root+revoked"} {
		if !strings.Contains(sloppyLine, want) {
			t.Errorf("sloppy card missing %q: %q", want, sloppyLine)
		}
	}
}

func TestAuditReportComposesBoth(t *testing.T) {
	var buf bytes.Buffer
	if err := AuditReport(&buf, battery(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	cardsAt := strings.Index(out, "Audit Report Cards")
	gridAt := strings.Index(out, "Audit Grid")
	if cardsAt < 0 || gridAt < 0 || gridAt < cardsAt {
		t.Fatalf("report must render cards then grid:\n%s", out)
	}
}

func TestAuditRenderersDeterministic(t *testing.T) {
	cells := battery(t)
	var a, b bytes.Buffer
	if err := AuditReport(&a, cells); err != nil {
		t.Fatal(err)
	}
	if err := AuditReport(&b, cells); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same cells differ")
	}
}
