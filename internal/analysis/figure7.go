package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tlsfof/internal/geo"
	"tlsfof/internal/store"
)

// Figure 7 in the paper is a world heatmap of per-country TLS proxy
// prevalence ("Highest = 12% proxy rate, lowest = 0%"). Without map
// geometry we render the same data two ways: an ASCII bucket chart for
// terminals and an SVG tile cartogram (one labeled cell per country,
// colored by rate) for documents.

// HeatCell is one country's figure datum.
type HeatCell struct {
	Code string
	Name string
	Rate float64
	Agg  store.Agg
}

// HeatmapData extracts and sorts the figure's per-country rates,
// rate-descending. minTested filters out countries with too few tests to
// have a meaningful rate (the paper's map covers 228 countries and
// territories; tiny denominators produce the extreme cells).
func HeatmapData(db *store.DB, gdb *geo.DB, minTested int) []HeatCell {
	rows := db.ByCountry(store.OrderByTested)
	cells := make([]HeatCell, 0, len(rows))
	for _, r := range rows {
		if r.Tested < minTested || r.Code == "??" {
			continue
		}
		cells = append(cells, HeatCell{
			Code: r.Code,
			Name: countryName(gdb, r.Code),
			Rate: r.Rate(),
			Agg:  r.Agg,
		})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Rate != cells[j].Rate {
			return cells[i].Rate > cells[j].Rate
		}
		return cells[i].Code < cells[j].Code
	})
	return cells
}

// heatBuckets partitions rates for the ASCII rendering, blue→red as in the
// paper's legend.
var heatBuckets = []struct {
	min   float64
	label string
}{
	{0.02, "█ >2.0%  (hottest)"},
	{0.01, "▓ 1.0–2.0%"},
	{0.005, "▒ 0.5–1.0%"},
	{0.002, "░ 0.2–0.5%"},
	{0.0005, "· 0.05–0.2%"},
	{0, "  <0.05% (coolest)"},
}

func bucketOf(rate float64) int {
	for i, b := range heatBuckets {
		if rate >= b.min {
			return i
		}
	}
	return len(heatBuckets) - 1
}

// Figure7ASCII renders the heatmap as bucketed country lists.
func Figure7ASCII(w io.Writer, db *store.DB, gdb *geo.DB) error {
	cells := HeatmapData(db, gdb, 200)
	fmt.Fprintln(w, "Figure 7: Heat-map of TLS proxy prevalence by country")
	fmt.Fprintf(w, "(%d countries with sufficient data; paper: highest=12%%, lowest=0%%)\n", len(cells))
	line(w, 72)
	byBucket := make(map[int][]HeatCell)
	for _, c := range cells {
		b := bucketOf(c.Rate)
		byBucket[b] = append(byBucket[b], c)
	}
	for i, b := range heatBuckets {
		members := byBucket[i]
		if len(members) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s  (%d countries)\n", b.label, len(members))
		var codes []string
		for _, m := range members {
			codes = append(codes, fmt.Sprintf("%s %.2f%%", m.Code, 100*m.Rate))
		}
		for _, chunk := range chunkStrings(codes, 8) {
			fmt.Fprintf(w, "    %s\n", strings.Join(chunk, "  "))
		}
	}
	if len(cells) > 0 {
		fmt.Fprintf(w, "hottest: %s (%s) %.2f%%   coolest: %s (%s) %.2f%%\n",
			cells[0].Name, cells[0].Code, 100*cells[0].Rate,
			cells[len(cells)-1].Name, cells[len(cells)-1].Code, 100*cells[len(cells)-1].Rate)
	}
	return nil
}

func chunkStrings(xs []string, n int) [][]string {
	var out [][]string
	for len(xs) > n {
		out = append(out, xs[:n])
		xs = xs[n:]
	}
	if len(xs) > 0 {
		out = append(out, xs)
	}
	return out
}

// Figure7SVG writes a tile-cartogram SVG: a grid of country cells colored
// blue (0%) through red (high), with a legend — the same encoding as the
// paper's choropleth without map geometry.
func Figure7SVG(w io.Writer, db *store.DB, gdb *geo.DB) error {
	cells := HeatmapData(db, gdb, 200)
	// Sort alphabetically for a stable grid.
	sort.Slice(cells, func(i, j int) bool { return cells[i].Code < cells[j].Code })
	const (
		cols   = 16
		cell   = 52
		pad    = 4
		header = 40
	)
	rowsN := (len(cells) + cols - 1) / cols
	width := cols*(cell+pad) + pad
	height := header + rowsN*(cell+pad) + 60

	var maxRate float64
	for _, c := range cells {
		if c.Rate > maxRate {
			maxRate = c.Rate
		}
	}
	if maxRate == 0 {
		maxRate = 0.01
	}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace">`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="24" font-size="16">TLS proxy prevalence by country (Figure 7)</text>`+"\n", pad)
	for i, c := range cells {
		col := i % cols
		row := i / cols
		x := pad + col*(cell+pad)
		y := header + row*(cell+pad)
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s: %.2f%% (%d/%d)</title></rect>`+"\n",
			x, y, cell, cell, heatColor(c.Rate/maxRate), c.Name, 100*c.Rate, c.Agg.Proxied, c.Agg.Tested)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="12" fill="white">%s</text>`+"\n", x+6, y+20, c.Code)
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="10" fill="white">%.2f%%</text>`+"\n", x+6, y+36, 100*c.Rate)
	}
	// Legend.
	ly := header + rowsN*(cell+pad) + 16
	for i := 0; i <= 10; i++ {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="24" height="14" fill="%s"/>`+"\n",
			pad+i*24, ly, heatColor(float64(i)/10))
	}
	fmt.Fprintf(w, `<text x="%d" y="%d" font-size="11">0%%</text>`+"\n", pad, ly+28)
	fmt.Fprintf(w, `<text x="%d" y="%d" font-size="11">%.1f%% (max)</text>`+"\n", pad+9*24, ly+28, 100*maxRate)
	fmt.Fprintln(w, `</svg>`)
	return nil
}

// heatColor maps a normalized rate in [0,1] to a blue→red gradient, the
// paper's legend ("Low TLS-proxy rates are signified by blue and gradually
// transition to red").
func heatColor(t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	r := int(40 + 200*t)
	g := int(60 * (1 - t))
	b := int(200 * (1 - t))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// BaselineComparison renders the Huang-style single-site comparison (§8):
// broad measurement vs whale-only measurement.
func BaselineComparison(w io.Writer, broadTested, broadProxied int, whaleHost string, whaleTested, whaleProxied int) error {
	broadRate := 0.0
	if broadTested > 0 {
		broadRate = float64(broadProxied) / float64(broadTested)
	}
	whaleRate := 0.0
	if whaleTested > 0 {
		whaleRate = float64(whaleProxied) / float64(whaleTested)
	}
	fmt.Fprintln(w, "Baseline comparison: broad measurement vs whale-only (Huang et al.)")
	line(w, 66)
	fmt.Fprintf(w, "%-34s %10s %9s %8s\n", "Measurement", "Tested", "Proxied", "Rate")
	line(w, 66)
	fmt.Fprintf(w, "%-34s %10d %9d %7.2f%%\n", "Broad (this work, 18 hosts)", broadTested, broadProxied, 100*broadRate)
	fmt.Fprintf(w, "%-34s %10d %9d %7.2f%%\n", "Whale-only ("+whaleHost+")", whaleTested, whaleProxied, 100*whaleRate)
	line(w, 66)
	if whaleRate > 0 {
		fmt.Fprintf(w, "ratio: %.2fx (paper: 0.41%% vs Huang's 0.20%% ≈ 2x)\n", broadRate/whaleRate)
	}
	return nil
}
