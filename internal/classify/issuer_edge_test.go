package classify

import (
	"crypto/x509"
	"crypto/x509/pkix"
	"strings"
	"testing"
)

// TestIssuerEdgeCases pins the classifier's behavior on the paper's
// "unidentifiable long tail" (§5.1): issuers that are null, blank,
// whitespace, malformed, or plain garbage. The invariant is that every
// input classifies to *some* category without panicking, that only
// genuinely empty issuers count as NullIssuer, and that junk never
// accidentally matches a product.
func TestIssuerEdgeCases(t *testing.T) {
	c := NewClassifier()
	cases := []struct {
		name         string
		org, cn, ou  string
		wantCategory Category
		wantNull     bool
		wantProduct  bool
	}{
		{name: "all empty", wantCategory: Unknown, wantNull: true},
		{name: "whitespace org only", org: "   ", wantCategory: Unknown, wantNull: true},
		{name: "whitespace all fields", org: " \t ", cn: "  ", ou: "\t\t", wantCategory: Unknown, wantNull: true},
		{name: "newline-only field", cn: "\n", wantCategory: Unknown, wantNull: true},
		// Non-UTF8 issuer bytes: real substitute certificates carried
		// PrintableString fields with high bytes; classification must
		// treat them as opaque, not crash or match.
		{name: "non-utf8 org", org: "\xff\xfe\xfd", wantCategory: Unknown},
		{name: "non-utf8 with product substring", org: "Bitdefender\xff", wantCategory: Unknown},
		{name: "nul bytes", org: "\x00\x00", wantCategory: Unknown},
		// Whitespace around a real product name still matches (the
		// normalize path), but whitespace *inside* does not.
		{name: "padded product", org: "  Bitdefender  ", wantCategory: BusinessPersonalFirewall, wantProduct: true},
		{name: "interior-split product", org: "Bit defender", wantCategory: Unknown},
		// A product name in one field wins even when other fields hold
		// junk bytes.
		{name: "product beats junk", org: "\xff\xfe", cn: "Kurupira.NET", wantCategory: ParentalControl, wantProduct: true},
		// Long-tail heuristics keep working on otherwise odd inputs.
		{name: "school with trailing junk", org: "Some University \t", wantCategory: School},
		{name: "unprintable telecom", org: "ACME Telecom", wantCategory: Telecom},
		// Very long garbage neither panics nor matches.
		{name: "16KB of garbage", org: strings.Repeat("\xfeZ", 8192), wantCategory: Unknown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := c.Classify(tc.org, tc.cn, tc.ou)
			if res.Category != tc.wantCategory {
				t.Fatalf("Classify(%q,%q,%q).Category = %v, want %v", tc.org, tc.cn, tc.ou, res.Category, tc.wantCategory)
			}
			if res.NullIssuer != tc.wantNull {
				t.Fatalf("NullIssuer = %v, want %v", res.NullIssuer, tc.wantNull)
			}
			if (res.Product != nil) != tc.wantProduct {
				t.Fatalf("Product = %v, wantProduct = %v", res.Product, tc.wantProduct)
			}
		})
	}
}

// TestClassifyCertEmptyRDN: a certificate whose issuer has empty RDN
// sequences (no Organization, no OU, empty CN) is the paper's null
// cohort, and ClassifyCert must land it there rather than index into
// missing fields.
func TestClassifyCertEmptyRDN(t *testing.T) {
	c := NewClassifier()
	cert := &x509.Certificate{Issuer: pkix.Name{}}
	res := c.ClassifyCert(cert)
	if !res.NullIssuer || res.Category != Unknown {
		t.Fatalf("empty-RDN issuer: %+v, want NullIssuer/Unknown", res)
	}
	// Populated-but-empty slices behave the same as missing ones.
	cert = &x509.Certificate{Issuer: pkix.Name{Organization: []string{""}, OrganizationalUnit: []string{""}}}
	res = c.ClassifyCert(cert)
	if !res.NullIssuer {
		t.Fatalf("empty-string RDN values: %+v, want NullIssuer", res)
	}
}

// TestWhitespaceOnlyProductNameNeverMatches guards the normalize path:
// if a product record ever carried a whitespace-only name, a blank
// issuer must still not match it. (The database has no such record
// today; this pins the lookup-side defense.)
func TestWhitespaceOnlyProductNameNeverMatches(t *testing.T) {
	c := NewClassifier()
	for _, blank := range []string{"", " ", "\t", "  \t "} {
		res := c.Classify(blank, "", "")
		if res.Product != nil {
			t.Fatalf("blank issuer %q matched product %q", blank, res.Product.Name)
		}
	}
	// And the builder never indexes an empty key.
	if _, ok := c.exact[""]; ok {
		t.Fatalf("classifier indexed an empty normalized name")
	}
}
