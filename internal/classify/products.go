package classify

// Product is one entry in the product intelligence database: an entity the
// study observed operating TLS proxies, with the behavioral facts §5 and §6
// established about it. The same records drive both classification (this
// package) and the behavior profiles the simulated proxies execute
// (internal/proxyengine), so the reproduction has a single source of truth
// about each product.
type Product struct {
	// Name is the canonical Issuer Organization string the product writes
	// into substitute certificates. Empty for the null-issuer cohort.
	Name string
	// CommonName is the Issuer CN when the product identifies there
	// instead of (or in addition to) the O field.
	CommonName string
	// Aliases are other issuer strings that map to this product.
	Aliases []string

	Category Category

	// SpamAssociated marks companies "highly associated with spam"
	// (Sweesh, AtomPark — §5.1).
	SpamAssociated bool
	// BotnetTies marks products with botnet evidence (Internet Widgits
	// Pty Ltd, kowsar's pattern — §6.4).
	BotnetTies bool
	// SharedKey512 marks the IopFailZeroAccessCreate behavior: every
	// substitute certificate carries the same 512-bit public key.
	SharedKey512 bool
	// InsertsAds marks ad-injection malware (WebMakerPlus, Superfish,
	// Objectify Media).
	InsertsAds bool
	// CopiesIssuer marks proxies that copy the authoritative issuer onto
	// forgeries (the false "DigiCert Inc" cohort — §5.2).
	CopiesIssuer bool
	// MasksInvalidUpstream marks the Kurupira flaw: an invalid upstream
	// certificate is replaced with a trusted one, hiding real attacks.
	MasksInvalidUpstream bool
	// RejectsInvalidUpstream marks the correct behavior the authors
	// verified for Bitdefender (§5.2).
	RejectsInvalidUpstream bool
	// WhitelistsWhales marks products that skip extremely popular sites
	// (the behavior §6.3 infers from Huang's lower Facebook-only rate).
	WhitelistsWhales bool
	// KeyBits is the public key size the product mints (0 ⇒ 1024, the
	// majority behavior per §5.2).
	KeyBits int
	// MD5 marks products signing substitutes with MD5.
	MD5 bool
	// UpgradesKey marks the minority that minted 2432-bit keys.
	UpgradesKey bool
	// WildcardIPSubject marks products whose forged subject is a
	// wildcarded IP subnet rather than the probed hostname (§5.2).
	WildcardIPSubject bool
	// WrongDomainSubject marks products whose forged subject names an
	// unrelated domain entirely (§5.2's mail.google.com case).
	WrongDomainSubject bool
}

// KnownProducts is the study's product database: every issuer the paper
// names, in rough Table 4 order, then the second study's additions.
var KnownProducts = []Product{
	// — Firewall / AV vendors (Table 4 ranks 1–7 minus malware) —
	// Key-strength facts follow §5.2: roughly half of all substitute
	// certificates kept 2048-bit keys (Bitdefender models that cohort)
	// while the other half downgraded to 1024 (the KeyBits: 0 default).
	{Name: "Bitdefender", Category: BusinessPersonalFirewall,
		RejectsInvalidUpstream: true, WhitelistsWhales: true, KeyBits: 2048},
	{Name: "PSafe Tecnologia S.A.", Category: BusinessPersonalFirewall},
	{Name: "ESET spol. s r. o.", Aliases: []string{"ESET, spol. s r. o."},
		Category: BusinessPersonalFirewall, WhitelistsWhales: true},
	{Name: "Kaspersky Lab ZAO", Aliases: []string{"Kaspersky Lab"},
		Category: BusinessPersonalFirewall, WhitelistsWhales: true},
	{Name: "Fortinet", Aliases: []string{"Fortinet Ltd."},
		Category: BusinessPersonalFirewall},
	{Name: "NordNet", Category: BusinessPersonalFirewall},
	{Name: "Sweesh LTD", Category: Malware, SpamAssociated: true, InsertsAds: true},
	{Name: "AtomPark Software Inc", Category: Malware, SpamAssociated: true},

	// — Parental controls —
	{Name: "Kurupira.NET", Aliases: []string{"Kurupira"},
		Category: ParentalControl, MasksInvalidUpstream: true},
	{Name: "Qustodio", Category: ParentalControl},
	{Name: "ContentWatch, Inc.", Aliases: []string{"ContentWatch"},
		Category: ParentalControl},
	{Name: "NetSpark, Inc.", Category: ParentalControl},

	// — Organizations the paper names —
	{Name: "POSCO", Category: Organization},
	{Name: "Southern Company Services", Category: Organization},
	{Name: "Target Corporation", Category: Organization},
	{Name: "IBRD", Category: Organization},
	{Name: "Cloud Services", Category: Organization},
	{Name: "Lawrence Livermore National Laboratory", Category: Organization},
	{Name: "Lincoln Financial Group", Category: Organization},
	{Name: "DSP", Category: Organization},               // Dept. of Social Protection, Ireland (§6.4)
	{Name: "Information Technology", Category: Unknown}, // 3 disparate orgs (§6.4)
	{Name: "MYInternetS", Category: Unknown},            // 6 ISPs, 2 countries (§6.4)

	// — Claimed certificate authorities —
	{Name: "DigiCert Inc", CommonName: "DigiCert High Assurance CA-3",
		Category: CertificateAuthority, CopiesIssuer: true},

	// — Malware, first study (§5.1) —
	{Name: "Sendori Inc", Aliases: []string{"Sendori, Inc"},
		Category: Malware},
	{Name: "WebMakerPlus Ltd", Category: Malware, InsertsAds: true},
	// Every IopFailZeroAccessCreate certificate shared one 512-bit key,
	// and §5.2's 21 MD5+512-bit certificates are exactly this cohort.
	{Name: "", CommonName: "IopFailZeroAccessCreate", Category: Malware,
		SharedKey512: true, BotnetTies: true, KeyBits: 512, MD5: true},

	// — Malware, second study additions (§6.4) —
	{Name: "Objectify Media Inc", Category: Malware, InsertsAds: true},
	{Name: "Superfish, Inc.", Aliases: []string{"Superfish Inc"},
		Category: Malware, InsertsAds: true},
	{Name: "WiredTools LTD", Category: Malware},
	{Name: "Internet Widgits Pty Ltd", Category: Malware, BotnetTies: true},
	{Name: "ImpressX OU", Category: Malware},

	// — Suspicious / telecom, second study —
	{Name: "kowsar", Category: Unknown, BotnetTies: true},
	{Name: "LG UPLUS", Aliases: []string{"LG U+"}, Category: Telecom},
	{Name: "SK Broadband", Category: Telecom},
	{Name: "Turk Telekom", Category: Telecom},
	{Name: "Rostelecom", Category: Telecom},
	{Name: "Telkom Indonesia", Category: Telecom},
}

// DisplayName returns the product's human-readable label: the canonical
// name, falling back to the certificate common name for records (like the
// IopFailZeroAccessCreate trojan) known only by what they write into
// their forgeries.
func (p *Product) DisplayName() string {
	if p.Name != "" {
		return p.Name
	}
	return p.CommonName
}

// ProductByName returns the database record whose canonical name, common
// name, or alias matches s exactly, or nil.
func ProductByName(s string) *Product {
	for i := range KnownProducts {
		p := &KnownProducts[i]
		if p.Name == s && s != "" {
			return p
		}
		if p.CommonName == s && s != "" {
			return p
		}
		for _, a := range p.Aliases {
			if a == s {
				return p
			}
		}
	}
	return nil
}
