// Package classify implements the paper's Issuer Organization analysis
// (§5.1, §6.1): given the issuer fields of a substitute certificate, decide
// what kind of entity ran the TLS proxy.
//
// The taxonomy is exactly the one in Tables 5 and 6. The product database
// records every organization the paper names, with the behavioral facts the
// study established about each (spam association, botnet ties, shared keys,
// issuer forgery, certificate masking). The paper stresses that these
// classifications rest on proxies self-identifying — a malicious proxy can
// claim to be anyone — and the engine preserves that caveat by reporting
// what was *claimed*, never what was verified.
package classify

import "fmt"

// Category is one row of Tables 5/6.
type Category int

// The claimed-issuer classification taxonomy.
const (
	// BusinessPersonalFirewall covers products sold in both enterprise
	// and consumer editions (Bitdefender, ESET, Kaspersky…): the
	// dominant class in both studies (~69–71%).
	BusinessPersonalFirewall Category = iota
	// BusinessFirewall covers enterprise-only middleboxes (Fortinet).
	BusinessFirewall
	// PersonalFirewall covers consumer-only products.
	PersonalFirewall
	// ParentalControl covers content filters aimed at families
	// (Kurupira, Qustodio, Net Nanny).
	ParentalControl
	// Organization covers corporate/agency names used by in-house
	// interception (Lawrence Livermore, POSCO, Target…).
	Organization
	// School covers educational institutions.
	School
	// Malware covers products established to be malicious (Sendori,
	// Superfish, IopFailZeroAccessCreate…).
	Malware
	// Unknown covers null, blank, or uncategorizable issuers — the class
	// that grew from 7.14% to 10.75% between studies (§6.1).
	Unknown
	// Telecom covers network operators intercepting their own users
	// (LG UPLUS), absent in study 1 and 0.88% in study 2.
	Telecom
	// CertificateAuthority covers claimed real CAs (the falsified
	// "DigiCert Inc" issuers of §5.2).
	CertificateAuthority

	numCategories = int(CertificateAuthority) + 1
)

// String returns the row label used in Tables 5/6.
func (c Category) String() string {
	switch c {
	case BusinessPersonalFirewall:
		return "Business/Personal Firewall"
	case BusinessFirewall:
		return "Business Firewall"
	case PersonalFirewall:
		return "Personal Firewall"
	case ParentalControl:
		return "Parental Control"
	case Organization:
		return "Organization"
	case School:
		return "School"
	case Malware:
		return "Malware"
	case Unknown:
		return "Unknown"
	case Telecom:
		return "Telecom"
	case CertificateAuthority:
		return "Certificate Authority"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// AllCategories lists the taxonomy in the paper's table order.
var AllCategories = []Category{
	BusinessPersonalFirewall,
	BusinessFirewall,
	PersonalFirewall,
	ParentalControl,
	Organization,
	School,
	Malware,
	Unknown,
	Telecom,
	CertificateAuthority,
}

// Benevolent reports whether the category represents a (claimed) legitimate
// use of interception. The paper's framing: firewalls, parental controls,
// organizations, schools, telecoms, and CAs all claim benevolence; malware
// does not; Unknown is indeterminate.
func (c Category) Benevolent() bool {
	switch c {
	case Malware, Unknown:
		return false
	default:
		return true
	}
}
