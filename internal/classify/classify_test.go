package classify

import (
	"crypto/x509/pkix"
	"testing"
	"testing/quick"

	"tlsfof/internal/certgen"
)

func TestCategoryStrings(t *testing.T) {
	if BusinessPersonalFirewall.String() != "Business/Personal Firewall" {
		t.Error("BPF label wrong")
	}
	if CertificateAuthority.String() != "Certificate Authority" {
		t.Error("CA label wrong")
	}
	if len(AllCategories) != numCategories {
		t.Fatalf("AllCategories has %d entries, want %d", len(AllCategories), numCategories)
	}
	seen := make(map[string]bool)
	for _, c := range AllCategories {
		s := c.String()
		if seen[s] {
			t.Errorf("duplicate label %q", s)
		}
		seen[s] = true
	}
}

func TestBenevolence(t *testing.T) {
	if Malware.Benevolent() || Unknown.Benevolent() {
		t.Error("malware/unknown reported benevolent")
	}
	if !BusinessPersonalFirewall.Benevolent() || !ParentalControl.Benevolent() {
		t.Error("firewall/parental reported malicious")
	}
}

func TestEveryPaperProductClassifies(t *testing.T) {
	c := NewClassifier()
	// Name → expected category for each product the paper names.
	cases := map[string]Category{
		"Bitdefender":               BusinessPersonalFirewall,
		"PSafe Tecnologia S.A.":     BusinessPersonalFirewall,
		"Sendori Inc":               Malware,
		"ESET spol. s r. o.":        BusinessPersonalFirewall,
		"Kaspersky Lab ZAO":         BusinessPersonalFirewall,
		"Fortinet":                  BusinessPersonalFirewall,
		"Kurupira.NET":              ParentalControl,
		"POSCO":                     Organization,
		"Qustodio":                  ParentalControl,
		"WebMakerPlus Ltd":          Malware,
		"Southern Company Services": Organization,
		"NordNet":                   BusinessPersonalFirewall,
		"Target Corporation":        Organization,
		"DigiCert Inc":              CertificateAuthority,
		"ContentWatch, Inc.":        ParentalControl,
		"NetSpark, Inc.":            ParentalControl,
		"Sweesh LTD":                Malware,
		"IBRD":                      Organization,
		"AtomPark Software Inc":     Malware,
		"Objectify Media Inc":       Malware,
		"Superfish, Inc.":           Malware,
		"WiredTools LTD":            Malware,
		"Internet Widgits Pty Ltd":  Malware,
		"ImpressX OU":               Malware,
		"kowsar":                    Unknown,
		"LG UPLUS":                  Telecom,
		"DSP":                       Organization,
	}
	for name, want := range cases {
		got := c.Classify(name, "", "")
		if got.Category != want {
			t.Errorf("Classify(%q) = %v, want %v", name, got.Category, want)
		}
		if got.Product == nil {
			t.Errorf("Classify(%q) did not match the product database", name)
		}
	}
}

func TestIopFailZeroAccessCreateViaCN(t *testing.T) {
	// This malware identifies only in the Issuer Common Name (§5.1).
	c := NewClassifier()
	got := c.Classify("", "IopFailZeroAccessCreate", "")
	if got.Category != Malware {
		t.Fatalf("category = %v", got.Category)
	}
	if got.Product == nil || !got.Product.SharedKey512 {
		t.Fatal("shared-key fact lost")
	}
}

func TestAliasesResolve(t *testing.T) {
	c := NewClassifier()
	for _, alias := range []string{"Sendori, Inc", "Kurupira", "Superfish Inc", "Kaspersky Lab"} {
		got := c.Classify(alias, "", "")
		if got.Product == nil {
			t.Errorf("alias %q did not resolve", alias)
		}
	}
}

func TestCaseAndSpaceInsensitive(t *testing.T) {
	c := NewClassifier()
	got := c.Classify("  bitdefender ", "", "")
	if got.Product == nil || got.Product.Name != "Bitdefender" {
		t.Fatalf("normalized match failed: %+v", got)
	}
}

func TestNullIssuer(t *testing.T) {
	c := NewClassifier()
	got := c.Classify("", "", "")
	if got.Category != Unknown || !got.NullIssuer {
		t.Fatalf("null issuer = %+v", got)
	}
	got = c.Classify("  ", "", " ")
	if !got.NullIssuer {
		t.Fatal("whitespace issuer not treated as null")
	}
}

func TestHeuristics(t *testing.T) {
	c := NewClassifier()
	cases := map[string]Category{
		"Brigham Young University":               School,
		"Provo School District":                  School,
		"Acme Telecom":                           Telecom,
		"Maple Valley Cable":                     Telecom,
		"SuperShield Firewall":                   BusinessPersonalFirewall,
		"SafeKids Parental Filter":               ParentalControl,
		"Global Certification Authority":         CertificateAuthority,
		"Best Deals Offers":                      Malware,
		"Consolidated Widgets Inc":               Organization,
		"Landesbank GmbH":                        Organization,
		"zxqw":                                   Unknown,
		"Lawrence Livermore National Laboratory": Organization,
	}
	for name, want := range cases {
		got := c.Classify(name, "", "")
		if got.Category != want {
			t.Errorf("Classify(%q) = %v, want %v", name, got.Category, want)
		}
	}
}

func TestFieldPriority(t *testing.T) {
	// Organization should be tried before CN: a product name in O wins
	// even when CN holds something generic.
	c := NewClassifier()
	got := c.Classify("Fortinet", "generic-gateway.local", "")
	if got.Product == nil || got.Product.Name != "Fortinet" {
		t.Fatalf("O-field priority broken: %+v", got)
	}
	// With O empty, CN should drive the decision.
	got = c.Classify("", "Riverdale University", "")
	if got.Category != School {
		t.Fatalf("CN fallback = %v", got.Category)
	}
	// With O and CN empty, OU is consulted.
	got = c.Classify("", "", "Kurupira.NET")
	if got.Category != ParentalControl {
		t.Fatalf("OU fallback = %v", got.Category)
	}
}

func TestClassifyCert(t *testing.T) {
	pool := certgen.NewKeyPool(1, nil)
	ca, err := certgen.NewRootCA(certgen.CAConfig{
		Subject: pkix.Name{CommonName: "Bitdefender Personal CA", Organization: []string{"Bitdefender"}},
		KeyBits: 1024, Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(certgen.LeafConfig{CommonName: "x.example", KeyBits: 512, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	got := NewClassifier().ClassifyCert(leaf.Cert)
	if got.Category != BusinessPersonalFirewall || got.Product == nil {
		t.Fatalf("ClassifyCert = %+v", got)
	}
}

func TestProductByName(t *testing.T) {
	if p := ProductByName("Superfish, Inc."); p == nil || !p.InsertsAds {
		t.Error("Superfish lookup failed")
	}
	if p := ProductByName("IopFailZeroAccessCreate"); p == nil || !p.SharedKey512 {
		t.Error("CN-only lookup failed")
	}
	if ProductByName("No Such Vendor") != nil {
		t.Error("phantom product")
	}
	if ProductByName("") != nil {
		t.Error("empty name must not match the null-issuer product record")
	}
}

func TestPaperBehavioralFacts(t *testing.T) {
	// The facts §5.2/§6.4 establish must be encoded in the database.
	kurupira := ProductByName("Kurupira.NET")
	if kurupira == nil || !kurupira.MasksInvalidUpstream {
		t.Error("Kurupira masking flaw not recorded")
	}
	bitdefender := ProductByName("Bitdefender")
	if bitdefender == nil || !bitdefender.RejectsInvalidUpstream {
		t.Error("Bitdefender rejection behavior not recorded")
	}
	digicert := ProductByName("DigiCert Inc")
	if digicert == nil || !digicert.CopiesIssuer {
		t.Error("DigiCert issuer-copy behavior not recorded")
	}
	sweesh := ProductByName("Sweesh LTD")
	if sweesh == nil || !sweesh.SpamAssociated {
		t.Error("Sweesh spam association not recorded")
	}
	widgits := ProductByName("Internet Widgits Pty Ltd")
	if widgits == nil || !widgits.BotnetTies {
		t.Error("Internet Widgits botnet ties not recorded")
	}
}

func TestMalwareProductCount(t *testing.T) {
	// The paper: "we have found eight distinct, self-identifying malware"
	// (Sendori, WebMakerPlus, IopFailZeroAccessCreate, Objectify Media,
	// Superfish, WiredTools, Internet Widgits, ImpressX). Spam-tool
	// vendors (Sweesh, AtomPark) are additional.
	core := 0
	for _, p := range KnownProducts {
		if p.Category == Malware && !p.SpamAssociated {
			core++
		}
	}
	if core != 8 {
		t.Fatalf("core malware products = %d, want 8", core)
	}
}

// Property: Classify is total and never panics for arbitrary field values,
// and the result category is always a member of the taxonomy.
func TestQuickClassifyTotal(t *testing.T) {
	c := NewClassifier()
	f := func(org, cn, ou string) bool {
		got := c.Classify(org, cn, ou)
		return int(got.Category) >= 0 && int(got.Category) < numCategories
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a product match is stable — classifying the canonical name of
// every database product returns that product.
func TestQuickProductFixedPoint(t *testing.T) {
	c := NewClassifier()
	for _, p := range KnownProducts {
		if p.Name == "" {
			continue
		}
		got := c.Classify(p.Name, "", "")
		if got.Product == nil {
			t.Fatalf("product %q does not classify to itself", p.Name)
		}
		if got.Category != p.Category {
			t.Fatalf("product %q category drifted: %v != %v", p.Name, got.Category, p.Category)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	c := NewClassifier()
	inputs := []string{"Bitdefender", "", "Riverdale University", "zxqw", "LG UPLUS"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(inputs[i%len(inputs)], "", "")
	}
}
