package classify

import (
	"crypto/x509"
	"strings"
)

// Result is the classification of one substitute certificate's claimed
// issuer.
type Result struct {
	Category Category
	// Product is the matched database record, nil when classification
	// fell through to heuristics.
	Product *Product
	// Matched is the issuer string the decision keyed on.
	Matched string
	// NullIssuer is true when every issuer field was blank — the cohort
	// §6.4 calls out ("1,518 where the issuer field is null or blank").
	NullIssuer bool
}

// Classifier maps claimed issuers to taxonomy categories. It is stateless
// and safe for concurrent use; construct once with NewClassifier.
type Classifier struct {
	exact map[string]*Product
}

// NewClassifier builds the lookup structures over KnownProducts.
func NewClassifier() *Classifier {
	c := &Classifier{exact: make(map[string]*Product)}
	for i := range KnownProducts {
		p := &KnownProducts[i]
		if p.Name != "" {
			c.exact[normalize(p.Name)] = p
		}
		if p.CommonName != "" {
			c.exact[normalize(p.CommonName)] = p
		}
		for _, a := range p.Aliases {
			c.exact[normalize(a)] = p
		}
	}
	return c
}

func normalize(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// Classify decides the category for a claimed issuer, given the three
// fields the paper inspected: Issuer Organization, Issuer Common Name, and
// Issuer Organizational Unit (§5.2: "names ... provided in the Issuer
// Organization, Issuer Organizational Unit, and Issuer Common Name
// fields").
func (c *Classifier) Classify(org, cn, ou string) Result {
	// 1. Exact product match on any field, most specific first.
	for _, field := range []string{org, cn, ou} {
		if field == "" {
			continue
		}
		if p, ok := c.exact[normalize(field)]; ok {
			return Result{Category: p.Category, Product: p, Matched: field}
		}
	}

	// 2. Null/blank issuer: the paper tallies these under Unknown.
	if strings.TrimSpace(org) == "" && strings.TrimSpace(cn) == "" && strings.TrimSpace(ou) == "" {
		return Result{Category: Unknown, NullIssuer: true}
	}

	// 3. Heuristics over whichever field is populated.
	display := org
	if display == "" {
		display = cn
	}
	if display == "" {
		display = ou
	}
	return Result{Category: heuristicCategory(display), Matched: display}
}

// ClassifyCert classifies directly from a parsed certificate's issuer.
func (c *Classifier) ClassifyCert(cert *x509.Certificate) Result {
	org, ou := "", ""
	if len(cert.Issuer.Organization) > 0 {
		org = cert.Issuer.Organization[0]
	}
	if len(cert.Issuer.OrganizationalUnit) > 0 {
		ou = cert.Issuer.OrganizationalUnit[0]
	}
	return c.Classify(org, cert.Issuer.CommonName, ou)
}

// heuristicCategory applies the manual-inspection rules the authors
// describe ("manually inspect the contents of the relevant fields to
// identify the issuing organization", §5.1), encoded as keyword tests.
func heuristicCategory(s string) Category {
	l := normalize(s)
	switch {
	case containsAny(l, "university", "school", "college", "academy",
		"district", "institut", "campus"):
		return School
	case containsAny(l, "telecom", "telekom", "communications", "uplus",
		"broadband", "cable", "mobile", "cellular", "gsm", "wireless"):
		return Telecom
	case containsAny(l, "personal firewall", "home firewall"):
		return PersonalFirewall
	case containsAny(l, "appliance", "perimeter", "utm", "enterprise gateway"):
		return BusinessFirewall
	case containsAny(l, "firewall", "antivirus", "anti-virus", "internet security",
		"web filter", "secure web", "gateway"):
		return BusinessPersonalFirewall
	case containsAny(l, "parental", "family", "child", "kids"):
		return ParentalControl
	case containsAny(l, "certificate authority", "certification authority",
		"trust services", "ssl ca"):
		return CertificateAuthority
	case containsAny(l, "adware", "ads by", "offers", "deals", "coupon",
		"savings"):
		// Ad-injection branding is how §6.4's malware cohort advertised
		// itself.
		return Malware
	case containsAny(l, " inc", " llc", " ltd", " gmbh", " s.a", " corp",
		" co.", " company", " group", " plc", " laboratory", " agency",
		" department", " ministry", " bank", " insurance", " financial",
		" services", " hospital", " clinic"):
		return Organization
	default:
		return Unknown
	}
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
