package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

type legacyDoc struct {
	Product string `json:"product"`
	Uptime  int    `json:"uptime_seconds"`
	Conns   struct {
		Accepted int `json:"accepted"`
		Active   int `json:"active"`
	} `json:"conns"`
}

func sampleDoc() any {
	var d legacyDoc
	d.Product = "mitmd"
	d.Uptime = 12
	d.Conns.Accepted = 40
	d.Conns.Active = 3
	return d
}

func TestHandlerJSONPreservesLegacyFields(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total", "requests").Add(7)
	h := Handler(reg, sampleDoc)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	// Existing scraper-facing field names survive verbatim.
	if got["product"] != "mitmd" || got["uptime_seconds"] != float64(12) {
		t.Fatalf("legacy fields mangled: %v", got)
	}
	conns, ok := got["conns"].(map[string]any)
	if !ok || conns["accepted"] != float64(40) {
		t.Fatalf("nested legacy fields mangled: %v", got["conns"])
	}
	tele, ok := got["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("no telemetry key: %v", got)
	}
	if tele["reqs_total"] != float64(7) {
		t.Fatalf("telemetry.reqs_total = %v, want 7", tele["reqs_total"])
	}
}

func TestHandlerJSONHistogram(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("stage_probe_seconds", "probe latency")
	for i := 0; i < 10; i++ {
		hist.Observe(time.Millisecond)
	}
	rec := httptest.NewRecorder()
	Handler(reg, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	tele := got["telemetry"].(map[string]any)
	h := tele["stage_probe_seconds"].(map[string]any)
	if h["count"] != float64(10) {
		t.Fatalf("count = %v, want 10", h["count"])
	}
	if p99, ok := h["p99_seconds"].(float64); !ok || p99 <= 0 {
		t.Fatalf("p99_seconds = %v", h["p99_seconds"])
	}
}

func TestHandlerPrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total", "total requests").Add(7)
	reg.Gauge("depth", "queue depth").Set(3)
	reg.GaugeFunc("fn_gauge", "", func() float64 { return 1.5 })
	hist := reg.Histogram("stage_probe_seconds", "probe latency")
	hist.Observe(time.Millisecond) // bucket bound 2^20 ns
	hist.Observe(3 * time.Millisecond)

	rec := httptest.NewRecorder()
	Handler(reg, sampleDoc).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE reqs_total counter",
		"reqs_total 7",
		"# TYPE depth gauge",
		"depth 3",
		"fn_gauge 1.5",
		"# TYPE stage_probe_seconds histogram",
		"stage_probe_seconds_count 2",
		`stage_probe_seconds_bucket{le="+Inf"} 2`,
		// Legacy doc numeric leaves flattened to gauges.
		"uptime_seconds 12",
		"conns_accepted 40",
		"conns_active 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prometheus body missing %q:\n%s", want, body)
		}
	}
	// Cumulative bucket counts must be nondecreasing and end at count.
	var last uint64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "stage_probe_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
	if last != 2 {
		t.Fatalf("final cumulative bucket = %d, want 2", last)
	}
	// The Accept header also selects the text format.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	Handler(reg, nil).ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "# TYPE reqs_total counter") {
		t.Fatal("Accept: text/plain did not select prometheus format")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":     "ok_name",
		"has-dash":    "has_dash",
		"dot.path":    "dot_path",
		"9starts":     "_9starts",
		"mixed.9-a_b": "mixed_9_a_b",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHandlerNilDocAndRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "{}" {
		t.Fatalf("nil/nil JSON = %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	Handler(nil, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if rec.Code != 200 {
		t.Fatalf("nil/nil prometheus status = %d", rec.Code)
	}
}
