package telemetry

import (
	"math/bits"
	"sync"
	"testing"
	"time"

	"tlsfof/internal/raceflag"
	"tlsfof/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Idempotent registration returns the same cell.
	if reg.Counter("reqs_total", "requests") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("y", "")
	h := reg.Histogram("z", "")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// None of these may panic.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	h.Observe(time.Second)
	h.ObserveSince(time.Now())
	reg.GaugeFunc("f", "", func() float64 { return 1 })
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read zero")
	}
	var tr *Tracer
	tr.Observe(StageProbe, time.Second)
	tr.Record(1, StageProbe, time.Now(), time.Second)
	tr.RecordSpan(1, StageProbe, time.Now(), time.Second)
	if _, ok := tr.Lookup(1); ok {
		t.Fatal("nil tracer must not find traces")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("m", "")
}

// TestHistogramBucketBoundaries is the bucket-boundary property test:
// for deterministic pseudo-random durations, every observation must land
// in the unique bucket i with 2^(i-1) <= d < 2^i, BucketBound must agree
// with bits.Len64, and snapshot totals must be conserved.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := &Histogram{}
	rng := stats.NewRNG(0x7e1e)
	var want [histBuckets]uint64
	const n = 10000
	var sum int64
	for i := 0; i < n; i++ {
		// Spread magnitudes across the full range: pick a bit width, then
		// a value of that width.
		width := 1 + rng.Intn(62)
		d := time.Duration(uint64(1)<<(width-1) | rng.Uint64()%(uint64(1)<<(width-1)))
		idx := bits.Len64(uint64(d)) - 1
		if idx != bucketIndex(d) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", d, bucketIndex(d), idx)
		}
		lo, hi := uint64(0), BucketBound(idx)
		if idx > 0 {
			lo = BucketBound(idx - 1)
		}
		if uint64(d) < lo || (idx < 63 && uint64(d) >= hi) {
			t.Fatalf("duration %d outside bucket %d bounds [%d,%d)", d, idx, lo, hi)
		}
		want[idx]++
		sum += int64(d)
		h.Observe(d)
	}
	// Exact boundary values: 2^k must land in bucket k, 2^k - 1 in k-1.
	for k := 1; k < 63; k++ {
		if got := bucketIndex(time.Duration(uint64(1) << k)); got != k {
			t.Fatalf("bucketIndex(2^%d) = %d, want %d", k, got, k)
		}
		if got := bucketIndex(time.Duration(uint64(1)<<k - 1)); got != k-1 {
			t.Fatalf("bucketIndex(2^%d-1) = %d, want %d", k, got, k-1)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(-time.Second); got != 0 {
		t.Fatalf("bucketIndex(-1s) = %d, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	var bucketTotal uint64
	for i := range s.Buckets {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, s.Buckets[i], want[i])
		}
		bucketTotal += s.Buckets[i]
	}
	if bucketTotal != n {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, n)
	}
	if wantSum := float64(sum) / 1e9; s.SumSeconds != wantSum {
		t.Fatalf("sum = %v, want %v", s.SumSeconds, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations (~1µs bucket), 10 slow (~1ms bucket).
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	p99 := s.Quantile(0.99)
	if p50 > 4*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs upper bound", p50)
	}
	if p99 < 500*time.Microsecond || p99 > 4*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1ms upper bound", p99)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

// TestConcurrentIncrementScrape hammers a shared counter, gauge, and
// histogram from many goroutines while scraping continuously — the -race
// coverage for the registry hot paths, and an invariant check that
// scrapes only ever see monotonically consistent histogram totals.
func TestConcurrentIncrementScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "")
	reg.GaugeFunc("f", "", func() float64 { return float64(c.Value()) })

	const workers = 8
	const perWorker = 2000
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, m := range reg.Snapshot() {
				if m.Kind != KindHistogram {
					continue
				}
				var bucketTotal uint64
				for _, b := range m.Hist.Buckets {
					bucketTotal += b
				}
				// Buckets are loaded before count in Snapshot and
				// incremented before count in Observe, so a scrape must
				// never see count exceed the bucket sum.
				if m.Hist.Count > bucketTotal {
					t.Errorf("scrape saw count %d > bucket total %d", m.Hist.Count, bucketTotal)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stats.NewRNG(seed)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(1 + rng.Intn(1_000_000)))
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHotPathAllocs is the alloc guard the issue demands: counter
// increment and histogram observe must be 0 allocs/op, or they cannot
// ride the probe/ingest hot paths that BenchmarkProbeAllocs pins.
// Race instrumentation allocates internally, so the pin is gated like
// the other hot-path guards.
func TestHotPathAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race detector instrumentation allocates; alloc pins run in the no-race CI lane")
	}
	reg := NewRegistry()
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "")
	tr := NewTracer(reg, 16)

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(42) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { tr.Observe(StageWAL, time.Millisecond) }); n != 0 {
		t.Errorf("Tracer.Observe allocates %v/op, want 0", n)
	}
	// Span recording into an existing trace slot must not allocate either
	// (the per-measurement path inside batched stages). Recording stops at
	// maxSpans, so alternate between two resident IDs to keep the slot
	// lookup path hot without growing anything.
	tr.RecordSpan(7, StageProbe, time.Time{}, time.Millisecond)
	if n := testing.AllocsPerRun(1000, func() {
		tr.RecordSpan(7, StageObserve, time.Time{}, time.Millisecond)
	}); n != 0 {
		t.Errorf("Tracer.RecordSpan (resident id) allocates %v/op, want 0", n)
	}
}
