package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestTraceSessionIDRoundTrip(t *testing.T) {
	for _, id := range []TraceID{1, 0xdeadbeef, 1<<64 - 1} {
		sid := AppendTraceSessionID(nil, id)
		if len(sid) != TraceSessionIDLen {
			t.Fatalf("session id length = %d, want %d", len(sid), TraceSessionIDLen)
		}
		got, ok := TraceFromSessionID(sid)
		if !ok || got != id {
			t.Fatalf("round trip of %v = %v, %v", id, got, ok)
		}
	}
	// Zero ID encodes but does not decode as traced — 0 means untraced.
	if _, ok := TraceFromSessionID(AppendTraceSessionID(nil, 0)); ok {
		t.Fatal("zero id must not decode as a trace")
	}
	// Foreign session ids must not decode: wrong length, wrong magic.
	for _, sid := range [][]byte{nil, {1, 2, 3}, make([]byte, 32), []byte("XXXX12345678")} {
		if _, ok := TraceFromSessionID(sid); ok {
			t.Fatalf("foreign session id %x decoded as a trace", sid)
		}
	}
}

func TestTraceIDStringParse(t *testing.T) {
	id := TraceID(0xabc123)
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("parse(%q) = %v, %v", id.String(), got, err)
	}
	if _, err := ParseTraceID("not-a-trace"); err == nil {
		t.Fatal("want error for junk input")
	}
}

func TestTracerRecordLookup(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 8)
	start := time.Unix(100, 0)
	tr.Record(42, StageProbe, start, time.Millisecond)
	tr.RecordSpan(42, StageObserve, start.Add(time.Millisecond), 10*time.Microsecond)

	got, ok := tr.Lookup(42)
	if !ok {
		t.Fatal("trace 42 not found")
	}
	if len(got.Spans) != 2 || got.Spans[0].Stage != StageProbe || got.Spans[1].Stage != StageObserve {
		t.Fatalf("spans = %+v", got.Spans)
	}
	if got.Spans[0].Duration != time.Millisecond {
		t.Fatalf("probe span duration = %v", got.Spans[0].Duration)
	}

	// Record fed the stage histogram; RecordSpan did not.
	if c := reg.Histogram(StageMetric(StageProbe), "").Snapshot().Count; c != 1 {
		t.Fatalf("probe histogram count = %d, want 1", c)
	}
	if c := reg.Histogram(StageMetric(StageObserve), "").Snapshot().Count; c != 0 {
		t.Fatalf("observe histogram count = %d, want 0 (RecordSpan is span-only)", c)
	}
	// Observe feeds the histogram without creating a trace.
	tr.Observe(StageWAL, time.Second)
	if c := reg.Histogram(StageMetric(StageWAL), "").Snapshot().Count; c != 1 {
		t.Fatalf("wal histogram count = %d, want 1", c)
	}
	if _, ok := tr.Lookup(0); ok {
		t.Fatal("id 0 must never resolve")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(nil, 4)
	for id := TraceID(1); id <= 6; id++ {
		tr.RecordSpan(id, StageProbe, time.Time{}, time.Millisecond)
	}
	// Capacity 4: ids 1 and 2 evicted, 3..6 resident.
	for id := TraceID(1); id <= 2; id++ {
		if _, ok := tr.Lookup(id); ok {
			t.Fatalf("id %d should have been evicted", id)
		}
	}
	for id := TraceID(3); id <= 6; id++ {
		if _, ok := tr.Lookup(id); !ok {
			t.Fatalf("id %d should be resident", id)
		}
	}
	recent := tr.Recent(2)
	if len(recent) != 2 || recent[0] != 6 || recent[1] != 5 {
		t.Fatalf("recent = %v, want [6 5]", recent)
	}
}

func TestTracerSpanBound(t *testing.T) {
	tr := NewTracer(nil, 2)
	for i := 0; i < maxSpans+3; i++ {
		tr.RecordSpan(9, StageProbe, time.Time{}, time.Millisecond)
	}
	got, ok := tr.Lookup(9)
	if !ok || len(got.Spans) != maxSpans || !got.Truncated {
		t.Fatalf("spans = %d truncated = %v, want %d true", len(got.Spans), got.Truncated, maxSpans)
	}
}

func TestTracerConcurrent(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base TraceID) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := base*1000 + TraceID(i%32) + 1
				tr.Record(id, StageProbe, time.Time{}, time.Millisecond)
				tr.Lookup(id)
				tr.Observe(StageWAL, time.Microsecond)
			}
		}(TraceID(w))
	}
	wg.Wait()
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(nil, 8)
	tr.RecordSpan(0xbeef, StageProbe, time.Unix(5, 0), 3*time.Millisecond)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace?id=000000000000beef", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var resp struct {
		ID    string `json:"id"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != "000000000000beef" || len(resp.Spans) != 1 || resp.Spans[0].Stage != StageProbe {
		t.Fatalf("resp = %+v", resp)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	var recent struct {
		Recent []string `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &recent); err != nil {
		t.Fatal(err)
	}
	if len(recent.Recent) != 1 || recent.Recent[0] != "000000000000beef" {
		t.Fatalf("recent = %+v", recent)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace?id=ffff", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id status = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/trace?id=zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("junk id status = %d, want 400", rec.Code)
	}
}
