package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// registryJSON renders a registry snapshot as the "telemetry" JSON value:
// counters and gauges as numbers, histograms as {count, sum_seconds,
// p50/p90/p99 upper-bound estimates}.
func registryJSON(reg *Registry) map[string]any {
	out := make(map[string]any)
	for _, m := range reg.Snapshot() {
		switch m.Kind {
		case KindHistogram:
			out[m.Name] = map[string]any{
				"count":       m.Hist.Count,
				"sum_seconds": m.Hist.SumSeconds,
				"p50_seconds": m.Hist.Quantile(0.50).Seconds(),
				"p90_seconds": m.Hist.Quantile(0.90).Seconds(),
				"p99_seconds": m.Hist.Quantile(0.99).Seconds(),
			}
		default:
			out[m.Name] = m.Value
		}
	}
	return out
}

// sanitizeMetricName maps arbitrary JSON keys onto the Prometheus metric
// name grammar.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Histograms emit cumulative le buckets in
// seconds plus _sum and _count, as a native Prometheus histogram would.
// Zero buckets are elided — 64 log2 buckets are mostly empty and the
// cumulative encoding stays exact without them.
func WritePrometheus(w *strings.Builder, reg *Registry) {
	for _, m := range reg.Snapshot() {
		name := sanitizeMetricName(m.Name)
		if m.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, strings.ReplaceAll(m.Help, "\n", " "))
		}
		switch m.Kind {
		case KindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, formatFloat(m.Value))
		case KindGauge, KindGaugeFunc:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(m.Value))
		case KindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum uint64
			for i, c := range m.Hist.Buckets {
				cum += c
				if c == 0 {
					continue
				}
				le := float64(BucketBound(i)) / 1e9
				fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(le), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(m.Hist.SumSeconds))
			fmt.Fprintf(w, "%s_count %d\n", name, m.Hist.Count)
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// flattenDoc walks a legacy metrics document (maps, numbers, bools) and
// emits each numeric leaf as prefix_path gauge lines, so the Prometheus
// view carries everything the JSON view does.
func flattenDoc(w *strings.Builder, prefix string, v any) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "_" + k
			}
			flattenDoc(w, p, x[k])
		}
	case float64:
		name := sanitizeMetricName(prefix)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(x))
	case bool:
		name := sanitizeMetricName(prefix)
		val := "0"
		if x {
			val = "1"
		}
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, val)
	case json.Number:
		if f, err := x.Float64(); err == nil {
			flattenDoc(w, prefix, f)
		}
	}
}

// docToMap round-trips an arbitrary legacy metrics document through JSON
// into a generic map so both formats share one source of truth.
func docToMap(doc any) (map[string]any, error) {
	raw, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	return m, nil
}

// Handler serves a unified /metrics endpoint. doc (optional) supplies a
// binary's legacy metrics document per scrape; its JSON field names are
// preserved verbatim so existing scrapers keep working, with the registry
// merged in under "telemetry". With ?format=prometheus (or an Accept
// header naming text/plain first) the same data renders as Prometheus
// text format: registry metrics natively (real histogram buckets),
// legacy-doc numeric leaves flattened to gauges.
func Handler(reg *Registry, doc func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wantsPrometheus(r) {
			var b strings.Builder
			if doc != nil {
				if m, err := docToMap(doc()); err == nil {
					flattenDoc(&b, "", m)
				}
			}
			WritePrometheus(&b, reg)
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write([]byte(b.String()))
			return
		}
		out := map[string]any{}
		if doc != nil {
			m, err := docToMap(doc())
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			out = m
		}
		if reg != nil {
			out["telemetry"] = registryJSON(reg)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}

func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.HasPrefix(accept, "text/plain")
}
