package telemetry

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one probe across every plane it touches. 0 means
// "untraced".
type TraceID uint64

// String renders the ID the way the /trace endpoints accept it.
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID accepts the hex form String produces, or a decimal.
func ParseTraceID(s string) (TraceID, error) {
	if v, err := strconv.ParseUint(s, 16, 64); err == nil {
		return TraceID(v), nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: bad trace id %q", s)
	}
	return TraceID(v), nil
}

// The probe carries its trace ID to the interceptor in-band, inside the
// ClientHello session-id field — an opaque legacy field the probe (which
// owns its own TLS wire implementation) is free to use, and one every
// middlebox must tolerate. 12 bytes: a 4-byte magic plus the big-endian
// ID, well under the field's 32-byte bound.
var traceSessionMagic = [4]byte{'T', 'F', 'T', '1'}

// TraceSessionIDLen is the session-id length EncodeTraceSessionID emits.
const TraceSessionIDLen = 12

// AppendTraceSessionID appends the session-id encoding of id to dst —
// the zero-realloc path for probe loops reusing a scratch buffer.
func AppendTraceSessionID(dst []byte, id TraceID) []byte {
	dst = append(dst, traceSessionMagic[:]...)
	return binary.BigEndian.AppendUint64(dst, uint64(id))
}

// TraceFromSessionID extracts a trace ID from a ClientHello session id,
// reporting false for session ids that are not the probe's encoding.
func TraceFromSessionID(sid []byte) (TraceID, bool) {
	if len(sid) != TraceSessionIDLen || [4]byte(sid[:4]) != traceSessionMagic {
		return 0, false
	}
	id := TraceID(binary.BigEndian.Uint64(sid[4:]))
	return id, id != 0
}

// Stage names. Each stage gets one latency histogram in the registry
// (stage_<name>_seconds) and appears as a span in per-ID traces.
const (
	StageProbe       = "probe"         // client partial handshake, wire to wire
	StageMitmSniff   = "mitm_sniff"    // interceptor: ClientHello read + parse
	StageMitmUpstrm  = "mitm_upstream" // interceptor: authoritative-chain fetch (cached after first)
	StageMitmForge   = "mitm_forge"    // interceptor: engine decision incl. chain mint/cache hit
	StageMitmRespond = "mitm_respond"  // interceptor: forged flight served to the client
	StageMitmSplice  = "mitm_splice"   // interceptor: whitelisted passthrough copy
	StageDecode      = "ingest_decode" // reportd: one wire frame off the batch stream
	StageObserve     = "observe"       // reportd: chain compare + classify (memo hit or full derive)
	StageQueue       = "shard_queue"   // pipeline: batch wait on the shard channel
	StageWAL         = "wal_append"    // pipeline: write-ahead append of the batch
	StageStore       = "store_merge"   // pipeline: batch folded into the shard store
)

// knownStages pre-registers every stage histogram so the recording hot
// path is one lock-free map read.
var knownStages = []string{
	StageProbe, StageMitmSniff, StageMitmUpstrm, StageMitmForge,
	StageMitmRespond, StageMitmSplice, StageDecode, StageObserve,
	StageQueue, StageWAL, StageStore,
}

// StageMetric returns the registry name of a stage's latency histogram.
func StageMetric(stage string) string { return "stage_" + stage + "_seconds" }

// maxSpans bounds the spans retained per trace; a probe crossing every
// plane records 8 (probe, sniff, upstream, forge, decode, observe,
// queue, wal, store is 9 — respond replaces splice and upstream is often
// a cache hit, but size for the full path anyway).
const maxSpans = 12

// Span is one recorded stage of a trace.
type Span struct {
	Stage string `json:"stage"`
	// Start is the stage's start time on the recording process's clock;
	// cross-process ordering is by stage semantics, not clock.
	Start time.Time `json:"start"`
	// Duration is the stage latency.
	Duration time.Duration `json:"duration_ns"`
}

// Trace is every span recorded for one ID on this process, in recording
// order.
type Trace struct {
	ID    TraceID `json:"-"`
	Spans []Span  `json:"spans"`
	// Truncated reports spans dropped past the per-trace bound.
	Truncated bool `json:"truncated,omitempty"`
}

// traceRec is one ring slot. Fixed-size span storage keeps recording
// allocation-free once a trace's slot exists.
type traceRec struct {
	id     TraceID
	n      int
	lost   bool
	stages [maxSpans]Span
}

// DefaultTraceCap bounds the trace ring when NewTracer gets cap <= 0:
// enough to hold a probe fleet's recent history without growing.
const DefaultTraceCap = 4096

// Tracer records spans by trace ID into a bounded ring and stage
// latencies into registry histograms. All methods are safe for
// concurrent use and nil-receiver-safe.
type Tracer struct {
	reg *Registry

	mu    sync.Mutex
	recs  []traceRec
	index map[TraceID]int
	next  int

	// hists maps stage → histogram. Known stages are pre-registered and
	// the map is never mutated afterwards, so reads need no lock; unknown
	// stages fall back to a locked overflow map.
	hists map[string]*Histogram

	extraMu sync.Mutex
	extra   map[string]*Histogram

	dropped *Counter
}

// NewTracer builds a tracer over reg (which may be nil: spans still
// record, histograms vanish) retaining the last cap traces.
func NewTracer(reg *Registry, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	t := &Tracer{
		reg:     reg,
		recs:    make([]traceRec, capacity),
		index:   make(map[TraceID]int, capacity),
		hists:   make(map[string]*Histogram, len(knownStages)),
		extra:   make(map[string]*Histogram),
		dropped: reg.Counter("trace_spans_dropped_total", "spans dropped because a trace hit its span bound"),
	}
	for _, st := range knownStages {
		t.hists[st] = reg.Histogram(StageMetric(st), "latency of the "+st+" stage")
	}
	return t
}

// hist returns the stage's histogram (nil when no registry is mounted).
func (t *Tracer) hist(stage string) *Histogram {
	if h, ok := t.hists[stage]; ok {
		return h
	}
	if t.reg == nil {
		return nil
	}
	t.extraMu.Lock()
	defer t.extraMu.Unlock()
	h, ok := t.extra[stage]
	if !ok {
		h = t.reg.Histogram(StageMetric(stage), "latency of the "+stage+" stage")
		t.extra[stage] = h
	}
	return h
}

// Observe records a stage latency into its histogram without touching
// any trace — the per-batch path (one WAL append covers many
// measurements; the histogram should count the append once).
func (t *Tracer) Observe(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.hist(stage).Observe(d)
}

// Record observes the stage latency and, for a nonzero ID, appends a
// span to the trace.
func (t *Tracer) Record(id TraceID, stage string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.hist(stage).Observe(d)
	if id != 0 {
		t.RecordSpan(id, stage, start, d)
	}
}

// RecordSpan appends a span to the trace without observing the
// histogram — the per-measurement path inside batched stages, where the
// batch already observed once.
func (t *Tracer) RecordSpan(id TraceID, stage string, start time.Time, d time.Duration) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	i, ok := t.index[id]
	if !ok {
		i = t.next
		t.next = (t.next + 1) % len(t.recs)
		if old := &t.recs[i]; old.id != 0 {
			delete(t.index, old.id)
		}
		t.recs[i] = traceRec{id: id}
		t.index[id] = i
	}
	rec := &t.recs[i]
	if rec.n >= maxSpans {
		rec.lost = true
		t.mu.Unlock()
		t.dropped.Inc()
		return
	}
	rec.stages[rec.n] = Span{Stage: stage, Start: start, Duration: d}
	rec.n++
	t.mu.Unlock()
}

// Lookup returns the recorded trace for id.
func (t *Tracer) Lookup(id TraceID) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.index[id]
	if !ok {
		return Trace{}, false
	}
	rec := &t.recs[i]
	tr := Trace{ID: id, Spans: make([]Span, rec.n), Truncated: rec.lost}
	copy(tr.Spans, rec.stages[:rec.n])
	return tr, true
}

// Recent returns up to n trace IDs, most recently created first.
func (t *Tracer) Recent(n int) []TraceID {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.recs) {
		n = len(t.recs)
	}
	out := make([]TraceID, 0, n)
	for off := 1; off <= len(t.recs) && len(out) < n; off++ {
		i := (t.next - off + len(t.recs)) % len(t.recs)
		if t.recs[i].id != 0 {
			out = append(out, t.recs[i].id)
		}
	}
	return out
}

// Handler serves traces: GET ?id=<hex> returns one trace's spans, no id
// returns the most recent trace IDs. Mounted as /trace on every plane's
// metrics listener.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		q := r.URL.Query().Get("id")
		if q == "" {
			ids := t.Recent(64)
			strs := make([]string, len(ids))
			for i, id := range ids {
				strs[i] = id.String()
			}
			json.NewEncoder(w).Encode(map[string]any{"recent": strs})
			return
		}
		id, err := ParseTraceID(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tr, ok := t.Lookup(id)
		if !ok {
			http.Error(w, "unknown trace id", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"id":        id.String(),
			"spans":     tr.Spans,
			"truncated": tr.Truncated,
		})
	})
}
