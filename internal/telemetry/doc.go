// Package telemetry is the repo's unified observability plane: one
// registry of zero-allocation counters, gauges, and log-bucketed latency
// histograms; lightweight probe-to-table span tracing; a dual-format
// (JSON + Prometheus text) exposition handler; and an slog-backed
// structured-event ring buffer for post-mortem dumps.
//
// Every subsystem used to invent its own stats struct and every binary
// hand-rolled its own /metrics JSON. This package replaces that with one
// substrate (DESIGN.md §11):
//
//   - Registry: named metrics, registered once, updated lock-free. The
//     update operations (Counter.Inc/Add, Gauge.Set/Add,
//     Histogram.Observe) are a single atomic op on a fixed cell — zero
//     allocations, pinned by AllocsPerRun guards — so they are safe to
//     mount on the probe/ingest hot paths the BenchmarkProbeAllocs
//     family protects. Every metric type is nil-receiver-safe, so
//     instrumented code needs no "is telemetry mounted" branches.
//
//   - Tracer: assigns each probe a 64-bit trace ID, carried in-band in
//     the TLS ClientHello session-id field (probe → mitmd, see
//     EncodeTraceSessionID) and in the ingest wire codec's TFW2 frame
//     (probe → reportd), so one capture can be followed
//     probe → mitmd sniff/forge/respond → /ingest/batch decode →
//     observe → shard queue → WAL append → store merge. Each hop records
//     a span into a bounded ring (queryable by ID via Tracer.Handler)
//     and a per-stage latency histogram in the registry.
//
//   - Handler: serves a legacy JSON document (existing /metrics field
//     names preserved, scrapers keep working) with the registry merged
//     under a "telemetry" key, and the same data as Prometheus text
//     format with ?format=prometheus.
//
//   - EventRing: a fixed-capacity slog.Handler holding the most recent
//     structured events; binaries dump it on panic or SIGTERM so a
//     crashed run leaves a post-mortem trail.
package telemetry
