package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric types a Registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindGaugeFunc
	KindHistogram
)

// Counter is a monotonically increasing metric. The zero value is ready;
// a nil Counter ignores updates, so unmounted instrumentation costs one
// predictable branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i holds
// observations with bits.Len64(nanoseconds) == i+1, i.e. durations in
// [2^i, 2^(i+1)) ns — log2 buckets from 1ns to ~292 years. Fixed-size
// arrays keep Observe allocation-free and bucket selection branch-free.
const histBuckets = 64

// Histogram is a log-bucketed latency histogram. Observe is one atomic
// add on a fixed cell plus one on the sum — zero allocations, safe on the
// probe/ingest hot paths. Nil-safe like Counter.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// bucketIndex maps a duration to its log2 bucket. Non-positive durations
// land in bucket 0 (clock skew between hops must not panic a scrape).
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d)) - 1
}

// BucketBound returns the exclusive upper bound of bucket i in
// nanoseconds: bucket i covers [1<<i, 1<<(i+1)) so its bound is
// 1<<(i+1), saturating at the top of the range.
func BucketBound(i int) uint64 {
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i+1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// ObserveSince records the elapsed time from start to now.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start))
}

// HistogramSnapshot is a coherent-enough point-in-time copy of a
// histogram: Count is read last, so Count <= sum of bucket counts never
// inverts (a bucket increment precedes its count increment in every
// Observe).
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	// SumSeconds is the total observed time.
	SumSeconds float64 `json:"sum_seconds"`
	// Buckets holds per-bucket counts; Buckets[i] counts observations in
	// [2^i, 2^(i+1)) nanoseconds.
	Buckets [histBuckets]uint64 `json:"-"`
}

// Snapshot copies the histogram state. Bucket counts are loaded before
// the total so the total never exceeds the bucket sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var sum int64
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	sum = h.sum.Load()
	s.SumSeconds = float64(sum) / 1e9
	return s
}

// Quantile estimates quantile q (in [0,1]) from the bucket boundaries;
// the estimate is the upper bound of the bucket holding the q-th
// observation, so it errs at most one power of two high.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen > rank {
			return time.Duration(BucketBound(i))
		}
	}
	return time.Duration(BucketBound(histBuckets - 1))
}

// metric is one registered entry.
type metric struct {
	name string
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry holds named metrics. Registration (Counter, Gauge, Histogram,
// GaugeFunc) takes a mutex and is idempotent by name; the returned
// metric handles update lock-free. A nil *Registry returns nil handles,
// so a plane wired for telemetry runs identically — minus the atomic
// ops — when none is mounted.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register inserts or retrieves the named metric, enforcing kind
// stability: re-registering a name with a different kind panics (a
// programming error, same family as prometheus.MustRegister).
func (r *Registry) register(name, help string, kind Kind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %q re-registered as kind %d (was %d)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case KindCounter:
		m.counter = &Counter{}
	case KindGauge:
		m.gauge = &Gauge{}
	case KindHistogram:
		m.hist = &Histogram{}
	}
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter).counter
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge).gauge
}

// Histogram registers (or retrieves) a log-bucketed latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindHistogram).hist
}

// GaugeFunc registers a gauge evaluated at scrape time — the bridge from
// existing stats structs (forge cache size, pipeline queue depth) into
// the registry without double accounting. Re-registering a name replaces
// its function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.register(name, help, KindGaugeFunc)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// MetricSnapshot is one metric's scrape-time state. Exactly one of the
// value fields is meaningful, selected by Kind.
type MetricSnapshot struct {
	Name  string
	Help  string
	Kind  Kind
	Value float64           // counter, gauge, gaugefunc
	Hist  HistogramSnapshot // histogram
}

// Snapshot captures every registered metric, sorted by name.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Help: m.help, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.counter.Value())
		case KindGauge:
			s.Value = float64(m.gauge.Value())
		case KindGaugeFunc:
			if m.fn != nil {
				s.Value = m.fn()
			}
		case KindHistogram:
			s.Hist = m.hist.Snapshot()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
