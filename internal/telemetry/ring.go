package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// DefaultEventCap bounds the event ring when NewEventRing gets cap <= 0.
const DefaultEventCap = 512

// EventRing is a fixed-capacity slog.Handler that retains the most
// recent structured log events as formatted lines. Binaries install it
// behind their normal handler (see Tee) and dump it on panic or SIGTERM,
// so a crashed run leaves a post-mortem trail of its final events even
// when routine logging was filtered or discarded.
type EventRing struct {
	mu    sync.Mutex
	lines []string
	next  int
	full  bool

	// pre holds attrs from WithAttrs, already rendered with the group
	// prefix in force when they were added; prefix applies to record attrs
	// and future WithAttrs.
	pre    string
	prefix string
	parent *EventRing // set on derived handlers; dump state lives on the root
}

// NewEventRing returns a ring retaining the last capacity events.
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventRing{lines: make([]string, capacity)}
}

// root follows WithAttrs/WithGroup derivation back to the shared ring.
func (e *EventRing) root() *EventRing {
	for e.parent != nil {
		e = e.parent
	}
	return e
}

// Enabled records everything; level filtering belongs to the primary
// handler, the ring is the flight recorder.
func (e *EventRing) Enabled(context.Context, slog.Level) bool { return true }

// Handle formats the record into one line and appends it to the ring.
func (e *EventRing) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s", r.Time.Format(time.RFC3339Nano), r.Level, r.Message)
	b.WriteString(e.pre)
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(&b, e.prefix, a)
		return true
	})
	root := e.root()
	root.mu.Lock()
	root.lines[root.next] = b.String()
	root.next = (root.next + 1) % len(root.lines)
	if root.next == 0 {
		root.full = true
	}
	root.mu.Unlock()
	return nil
}

func writeAttr(b *strings.Builder, prefix string, a slog.Attr) {
	key := a.Key
	if prefix != "" {
		key = prefix + "." + key
	}
	fmt.Fprintf(b, " %s=%v", key, a.Value)
}

// WithAttrs returns a handler whose records carry the extra attrs but
// share this ring's storage.
func (e *EventRing) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(e.pre)
	for _, a := range attrs {
		writeAttr(&b, e.prefix, a)
	}
	return &EventRing{parent: e.root(), pre: b.String(), prefix: e.prefix}
}

// WithGroup returns a handler whose subsequent attr keys are prefixed by
// name but shares this ring's storage.
func (e *EventRing) WithGroup(name string) slog.Handler {
	p := name
	if e.prefix != "" {
		p = e.prefix + "." + name
	}
	return &EventRing{parent: e.root(), pre: e.pre, prefix: p}
}

// Events returns the retained lines, oldest first.
func (e *EventRing) Events() []string {
	root := e.root()
	root.mu.Lock()
	defer root.mu.Unlock()
	var out []string
	if root.full {
		out = make([]string, 0, len(root.lines))
		out = append(out, root.lines[root.next:]...)
		out = append(out, root.lines[:root.next]...)
	} else {
		out = append(out, root.lines[:root.next]...)
	}
	return out
}

// Dump writes the retained events to w, oldest first, fenced so a dump
// is findable in interleaved stderr.
func (e *EventRing) Dump(w io.Writer) {
	events := e.Events()
	fmt.Fprintf(w, "--- telemetry event ring (%d events, oldest first) ---\n", len(events))
	for _, line := range events {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w, "--- end event ring ---")
}

// Tee returns an slog.Handler that feeds every record to both primary
// and the ring. The ring sees records the primary's level filter drops —
// that is the point: the post-mortem trail is complete even when routine
// output is quiet.
func Tee(primary slog.Handler, ring *EventRing) slog.Handler {
	return teeHandler{primary: primary, ring: ring}
}

type teeHandler struct {
	primary slog.Handler
	ring    slog.Handler
}

func (t teeHandler) Enabled(ctx context.Context, lvl slog.Level) bool { return true }

func (t teeHandler) Handle(ctx context.Context, r slog.Record) error {
	if t.primary != nil && t.primary.Enabled(ctx, r.Level) {
		_ = t.primary.Handle(ctx, r.Clone())
	}
	return t.ring.Handle(ctx, r)
}

func (t teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var p slog.Handler
	if t.primary != nil {
		p = t.primary.WithAttrs(attrs)
	}
	return teeHandler{primary: p, ring: t.ring.WithAttrs(attrs)}
}

func (t teeHandler) WithGroup(name string) slog.Handler {
	var p slog.Handler
	if t.primary != nil {
		p = t.primary.WithGroup(name)
	}
	return teeHandler{primary: p, ring: t.ring.WithGroup(name)}
}

// DumpOnPanic dumps the ring and re-panics; defer it first thing in main:
//
//	defer telemetry.DumpOnPanic(ring, os.Stderr)
func DumpOnPanic(ring *EventRing, w io.Writer) {
	if r := recover(); r != nil {
		fmt.Fprintf(w, "panic: %v\n", r)
		ring.Dump(w)
		panic(r)
	}
}
