package telemetry

import (
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestEventRingRetainsMostRecent(t *testing.T) {
	ring := NewEventRing(4)
	log := slog.New(ring)
	for i := 0; i < 7; i++ {
		log.Info("event", "i", i)
	}
	events := ring.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for j, want := range []string{"i=3", "i=4", "i=5", "i=6"} {
		if !strings.Contains(events[j], want) {
			t.Fatalf("events[%d] = %q, want it to contain %q (oldest first)", j, events[j], want)
		}
	}
}

func TestEventRingAttrsAndGroups(t *testing.T) {
	ring := NewEventRing(8)
	log := slog.New(ring).With("shard", 3).WithGroup("wal").With("dir", "/tmp/x")
	log.Warn("append failed", "err", "disk full")
	events := ring.Events()
	if len(events) != 1 {
		t.Fatalf("retained %d events, want 1", len(events))
	}
	line := events[0]
	for _, want := range []string{"WARN", "append failed", "shard=3", "wal.dir=/tmp/x", "wal.err=disk full"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	// The pre-group attr must not carry the group prefix.
	if strings.Contains(line, "wal.shard") {
		t.Fatalf("pre-group attr wrongly prefixed: %q", line)
	}
}

func TestEventRingDump(t *testing.T) {
	ring := NewEventRing(4)
	slog.New(ring).Error("boom", "code", 7)
	var b strings.Builder
	ring.Dump(&b)
	out := b.String()
	for _, want := range []string{"telemetry event ring (1 events", "boom", "code=7", "end event ring"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump %q missing %q", out, want)
		}
	}
}

func TestTeeFeedsBothHandlers(t *testing.T) {
	ring := NewEventRing(8)
	var primaryOut strings.Builder
	primary := slog.NewTextHandler(&primaryOut, &slog.HandlerOptions{Level: slog.LevelWarn})
	log := slog.New(Tee(primary, ring))

	log.Info("quiet", "k", "v") // below primary's level: ring only
	log.Warn("loud")

	if strings.Contains(primaryOut.String(), "quiet") {
		t.Fatal("primary should have filtered the info event")
	}
	if !strings.Contains(primaryOut.String(), "loud") {
		t.Fatal("primary missed the warn event")
	}
	events := ring.Events()
	if len(events) != 2 {
		t.Fatalf("ring retained %d events, want 2 (flight recorder sees filtered events)", len(events))
	}
	// Derived handlers must keep feeding the same ring.
	slog.New(Tee(primary, ring)).With("a", 1).WithGroup("g").Warn("derived", "b", 2)
	events = ring.Events()
	last := events[len(events)-1]
	for _, want := range []string{"derived", "a=1", "g.b=2"} {
		if !strings.Contains(last, want) {
			t.Fatalf("derived line %q missing %q", last, want)
		}
	}
}

func TestEventRingConcurrent(t *testing.T) {
	ring := NewEventRing(64)
	log := slog.New(ring)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				log.Info("e", "w", w, "i", i)
				if i%32 == 0 {
					ring.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(ring.Events()); got != 64 {
		t.Fatalf("retained %d events, want full ring of 64", got)
	}
}
