package ingest

// Tests for the decode-in-place arena: equivalence with the plain
// (per-report-copy) decoder, and proof that nothing downstream of the
// collector retains an arena slice across Reset — the lifetime contract
// every pooled HTTP handler depends on.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"tlsfof/internal/classify"
	"tlsfof/internal/core"
)

// decodeUpTo drains a wire stream, returning the decoded reports and
// the terminal error (io.EOF for a clean end). The cap mirrors the
// fuzz harness's bound on hostile report counts.
func decodeUpTo(dec *Decoder, limit int) ([]Report, error, bool) {
	var out []Report
	for {
		rep, err := dec.Next()
		if err != nil {
			return out, err, false
		}
		out = append(out, rep)
		if len(out) > limit {
			return out, nil, true
		}
	}
}

// TestArenaDecoderMatchesPlain: the arena decoder must be observably
// identical to the plain decoder — same reports, same terminal error —
// and stay identical when the arena is recycled (poisoned, then Reset)
// between streams, proving no second-stream report depends on
// first-stream arena memory.
func TestArenaDecoderMatchesPlain(t *testing.T) {
	reports := []Report{
		{Host: "one.example", ChainDER: [][]byte{bytes.Repeat([]byte{0x30}, 600), {0x01, 0x02}}, Trace: 7},
		{Host: "two.example", ChainDER: [][]byte{bytes.Repeat([]byte{0x41}, 1200)}},
		{Host: "one.example", ChainDER: [][]byte{{0xff}}},
	}
	stream, err := EncodeReports(reports)
	if err != nil {
		t.Fatal(err)
	}
	plain, plainErr, _ := decodeUpTo(NewDecoder(bytes.NewReader(stream)), 1<<12)

	a := NewArena()
	for round := 0; round < 3; round++ {
		got, gotErr, _ := decodeUpTo(NewArenaDecoder(bytes.NewReader(stream), a), 1<<12)
		if !reflect.DeepEqual(got, plain) {
			t.Fatalf("round %d: arena decode diverged from plain decode", round)
		}
		if (gotErr == nil) != (plainErr == nil) || (gotErr != nil && gotErr.Error() != plainErr.Error()) {
			t.Fatalf("round %d: arena err %v, plain err %v", round, gotErr, plainErr)
		}
		a.poison(0xAA)
		a.Reset()
	}
}

// TestArenaRecycleKeepsCollectorStateValid drives arena-decoded reports
// into a collector with an observation cache, then poisons and recycles
// the arena and ingests the same stream again. The chaincache clones
// observed chains on insert; if it instead retained the arena-aliased
// DER slices, the poisoned bytes would no longer match on the second
// pass and every lookup would degrade to a collision + re-derivation.
// The pin: second pass is all cache hits, zero collisions, one
// derivation total, and the measurements are byte-identical to a
// plain-decode control.
func TestArenaRecycleKeepsCollectorStateValid(t *testing.T) {
	const host = "retain.example"
	chain := testChain(t, host)
	var reports []Report
	for i := 0; i < 3; i++ {
		reports = append(reports, Report{Host: host, ChainDER: chain})
	}
	stream, err := EncodeReports(reports)
	if err != nil {
		t.Fatal(err)
	}

	newCollector := func(out *[]core.Measurement) *core.Collector {
		col := core.NewCollector(classify.NewClassifier(), nil, core.SinkFunc(func(m core.Measurement) {
			*out = append(*out, m)
		}))
		col.Clock = func() time.Time { return time.Time{} }
		col.SetAuthoritative(host, chain)
		return col
	}
	ingestAll := func(t *testing.T, dec *Decoder, col *core.Collector) {
		t.Helper()
		for {
			rep, err := dec.Next()
			if err != nil {
				break
			}
			if _, err := col.Ingest(0x0a000001, rep.Host, rep.ChainDER, "arena-test"); err != nil {
				t.Fatal(err)
			}
		}
	}

	var control []core.Measurement
	ingestAll(t, NewDecoder(bytes.NewReader(stream)), newCollector(&control))

	var got []core.Measurement
	col := newCollector(&got)
	cache := core.NewObservationCache(0, 0)
	col.Cache = cache
	a := NewArena()
	dec := NewArenaDecoder(bytes.NewReader(stream), a)
	ingestAll(t, dec, col)
	a.poison(0xAA) // rot every byte the first pass handed out
	a.Reset()
	dec.Reset(bytes.NewReader(stream))
	ingestAll(t, dec, col)

	st := cache.Stats()
	if st.Collisions != 0 {
		t.Fatalf("cache collisions = %d: cached entry no longer matches its chain — it retained arena memory", st.Collisions)
	}
	if st.Derives != 1 {
		t.Fatalf("cache derives = %d, want 1 (one distinct host/chain pair)", st.Derives)
	}
	if st.Hits != uint64(2*len(reports)-1) {
		t.Fatalf("cache hits = %d, want %d", st.Hits, 2*len(reports)-1)
	}
	want := append(append([]core.Measurement(nil), control...), control...)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("arena-decoded ingest diverged from plain-decode control")
	}
}

// FuzzArenaDecodeMatchesPlain holds the arena decoder to the plain
// decoder's observable behavior on arbitrary streams, across an arena
// recycle: both decode rounds over a poisoned-then-Reset arena must
// reproduce the plain decoder's reports and terminal error exactly.
func FuzzArenaDecodeMatchesPlain(f *testing.F) {
	valid, err := EncodeReports([]Report{
		{Host: "example.com", ChainDER: [][]byte{bytes.Repeat([]byte{0x30}, 900), {0x30, 0x01}}, Trace: 99},
		{Host: "byu.edu", ChainDER: [][]byte{{0x01}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("TFW2"))
	f.Add([]byte("TFW1"))
	f.Add([]byte{})
	f.Add(append([]byte("TFW2"), 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f))

	f.Fuzz(func(t *testing.T, stream []byte) {
		plain, plainErr, capped := decodeUpTo(NewDecoder(bytes.NewReader(stream)), 1<<12)
		if capped {
			return
		}
		a := NewArena()
		for round := 0; round < 2; round++ {
			got, gotErr, capped := decodeUpTo(NewArenaDecoder(bytes.NewReader(stream), a), 1<<12)
			if capped {
				t.Fatal("arena decoder emitted more reports than the plain decoder")
			}
			if len(got) != len(plain) {
				t.Fatalf("round %d: arena decoded %d reports, plain %d", round, len(got), len(plain))
			}
			for i := range got {
				if got[i].Host != plain[i].Host || got[i].Trace != plain[i].Trace ||
					!reflect.DeepEqual(got[i].ChainDER, plain[i].ChainDER) {
					t.Fatalf("round %d: report %d differs between arena and plain decode", round, i)
				}
			}
			if (gotErr == nil) != (plainErr == nil) || (gotErr != nil && gotErr.Error() != plainErr.Error()) {
				t.Fatalf("round %d: arena err %v, plain err %v", round, gotErr, plainErr)
			}
			a.poison(0xAA)
			a.Reset()
		}
	})
}
