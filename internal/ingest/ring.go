package ingest

import (
	"sync/atomic"
	"time"

	"tlsfof/internal/core"
)

// queued is one ring item: a batch, whether its backing slice came from
// the pipeline's buffer pool (and so returns there after delivery), and
// the timestamp it joined the queue (zero when no tracer is mounted —
// the clock is only read for telemetry).
type queued struct {
	ms         []core.Measurement
	owned      bool
	enqueuedAt time.Time
}

// batchRing is the bounded multi-producer single-consumer shard queue: a
// power-of-two ring of sequence-stamped slots (the Vyukov bounded-queue
// scheme) with channel-based parking on both sides — a futex-style
// wakeup in Go terms: the fast path is pure atomics, and a side only
// touches its parking channel after announcing itself parked and
// re-checking, so no wakeup is ever lost.
//
// Compared to the buffered channel it replaces, a push or pop on the
// uncontended fast path is a handful of atomic ops with no runtime lock,
// no sudog allocation, and no scheduler interaction; the consumer can
// also drain opportunistically (tryPop) to form WAL commit groups, which
// a channel only offers via select-default per element.
type batchRing struct {
	mask  uint64
	limit uint64 // logical capacity: exactly the configured QueueDepth
	slots []ringSlot

	tail atomic.Uint64 // next slot producers will reserve
	head atomic.Uint64 // next slot the consumer will take

	// consumerParked is the consumer's "I am about to sleep" announcement;
	// producers that observe it post one token to wake. spaceWaiters is
	// the producer-side equivalent for a full ring under Block semantics.
	consumerParked atomic.Bool
	spaceWaiters   atomic.Int32
	wake           chan struct{}
	space          chan struct{}
	closed         atomic.Bool
}

// ringSlot pairs a sequence stamp with the item. seq == index means the
// slot is free for the producer of that lap; seq == index+1 means the
// item is published and consumable.
type ringSlot struct {
	seq atomic.Uint64
	val queued
}

// newBatchRing builds a ring holding exactly depth items. The slot array
// is the next power of two (minimum 2 — with one slot a published seq is
// indistinguishable from free-for-next-lap), and the logical limit keeps
// QueueDepth semantics exact.
func newBatchRing(depth int) *batchRing {
	if depth < 1 {
		depth = 1
	}
	capacity := 2
	for capacity < depth {
		capacity <<= 1
	}
	r := &batchRing{
		mask:  uint64(capacity - 1),
		limit: uint64(depth),
		slots: make([]ringSlot, capacity),
		wake:  make(chan struct{}, 1),
		space: make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// tryPush publishes v, reporting false when the ring is full. Pushing on
// a closed ring panics (the pipeline's producers must stop before Close,
// exactly as sending on a closed channel did before).
func (r *batchRing) tryPush(v queued) bool {
	if r.closed.Load() {
		panic("ingest: push on closed shard ring")
	}
	pos := r.tail.Load()
	for {
		// Logical-capacity check: head only advances, so if occupancy is
		// below limit here and the CAS below wins (tail still == pos),
		// post-reservation occupancy cannot exceed limit.
		if pos-r.head.Load() >= r.limit {
			return false
		}
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1) // publish
				r.wakeConsumer()
				return true
			}
			pos = r.tail.Load()
		case seq < pos:
			// The slot still holds an item from mask+1 positions ago: full.
			return false
		default:
			// Another producer advanced tail past our stale view.
			pos = r.tail.Load()
		}
	}
}

// push publishes v, blocking while the ring is full (Block backpressure).
func (r *batchRing) push(v queued) {
	for {
		if r.tryPush(v) {
			return
		}
		r.spaceWaiters.Add(1)
		// Re-check after announcing: a consumer that freed a slot before
		// seeing the announcement is caught here; one that freed after
		// will post a token below.
		if r.tryPush(v) {
			r.spaceWaiters.Add(-1)
			return
		}
		<-r.space
		r.spaceWaiters.Add(-1)
	}
}

// tryPop takes the next published item (single consumer only).
func (r *batchRing) tryPop() (queued, bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	if s.seq.Load() != pos+1 {
		return queued{}, false
	}
	v := s.val
	s.val = queued{} // drop the batch reference before freeing the slot
	s.seq.Store(pos + r.mask + 1)
	r.head.Store(pos + 1)
	r.signalSpace()
	return v, true
}

// popWait blocks until an item is available, returning ok=false only
// when the ring is closed and fully drained.
func (r *batchRing) popWait() (queued, bool) {
	for {
		if v, ok := r.tryPop(); ok {
			return v, true
		}
		r.consumerParked.Store(true)
		// Re-check after announcing (the producer-side mirror of push):
		// a publish that raced the announcement is caught here; one that
		// lands after it observes the flag and posts a wake token.
		if v, ok := r.tryPop(); ok {
			r.consumerParked.Store(false)
			return v, true
		}
		if r.closed.Load() {
			// close() happens after every producer has stopped, so one
			// final check drains anything published before the close.
			v, ok := r.tryPop()
			r.consumerParked.Store(false)
			return v, ok
		}
		<-r.wake
		r.consumerParked.Store(false)
	}
}

// wakeConsumer posts one wake token if the consumer announced itself
// parked. The token channel has capacity 1, so concurrent producers
// collapse into a single wakeup; a stale token only costs the consumer
// one spurious re-check.
func (r *batchRing) wakeConsumer() {
	if r.consumerParked.Load() {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// signalSpace posts one space token if any producer is parked on a full
// ring. Called by the consumer after every pop.
func (r *batchRing) signalSpace() {
	if r.spaceWaiters.Load() > 0 {
		select {
		case r.space <- struct{}{}:
		default:
		}
	}
}

// close marks the ring closed and wakes the consumer so it can observe
// the close. Producers must already have stopped.
func (r *batchRing) close() {
	r.closed.Store(true)
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// len approximates the queued item count (reserved-but-unpublished slots
// count as queued); good enough for the stats gauge it feeds.
func (r *batchRing) len() int {
	t, h := r.tail.Load(), r.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}
