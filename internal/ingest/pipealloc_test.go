package ingest

// Allocation pins for the pooled ingest hot paths. The tentpole fix
// exists to take the sharded pipeline's per-op allocations from
// hundreds (fresh sub-batch slices, channel garbage, per-cert decode
// copies) to near zero; these tests keep that property from rotting.
// All pins skip under -race: the race runtime instruments allocations
// and the counts stop meaning anything.

import (
	"bytes"
	"testing"

	"tlsfof/internal/core"
	"tlsfof/internal/raceflag"
)

// TestSplitAllocs pins the IngestBatch shard split: two passes over
// pooled scratch plus pooled sub-batch frames. The pre-fix split
// allocated the index slice, the per-shard counts, and every sub-batch
// on every call (8+ allocs/op at 4 shards); a split served entirely
// from the freelist allocates nothing. The freelist is pre-stocked so
// the pin measures the split path itself, not whether this machine's
// scheduler let the shard workers recycle frames fast enough.
func TestSplitAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := NewPipeline(Config{Shards: 4, QueueDepth: 256, Block: true, Sinks: func(int) BatchSink {
		return BatchSinkFunc(func([]core.Measurement) {})
	}})
	defer p.Close()
	batch := walTestMeasurements(64)
	for i := 0; i < 1000; i++ {
		p.pool.put(make([]core.Measurement, 0, len(batch)))
	}
	for i := 0; i < 10; i++ { // warm the split scratch
		p.IngestBatch(batch)
	}
	p.Drain()
	allocs := testing.AllocsPerRun(200, func() {
		p.IngestBatch(batch)
	})
	p.Drain()
	if allocs > 0.5 {
		t.Fatalf("IngestBatch split allocates %.2f/op, want ~0 (pooled scratch + frames)", allocs)
	}
}

// TestIngestAllocs pins the one-measurement Sink face: appending into a
// pooled pending frame and publishing a full frame on the ring is
// allocation-free in steady state.
func TestIngestAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := NewPipeline(Config{Shards: 1, BatchSize: 8, QueueDepth: 256, Block: true, Sinks: func(int) BatchSink {
		return BatchSinkFunc(func([]core.Measurement) {})
	}})
	defer p.Close()
	m := walTestMeasurements(1)[0]
	for i := 0; i < 300; i++ { // pre-stock pending frames (see TestSplitAllocs)
		p.pool.put(make([]core.Measurement, 0, 8))
	}
	for i := 0; i < 400; i++ {
		p.Ingest(m)
	}
	p.Drain()
	allocs := testing.AllocsPerRun(800, func() {
		p.Ingest(m)
	})
	p.Drain()
	if allocs > 0.25 {
		t.Fatalf("Ingest allocates %.2f/op, want ~0 (pooled pending frames)", allocs)
	}
}

// TestArenaDecodeAllocs pins decode-in-place: on a warm arena (blocks
// grown, hosts interned) decoding a whole wire stream performs zero
// heap allocations — DER bytes and chain headers carve out of recycled
// blocks, host names hit the intern table, and the decoder's buffers
// rearm via Reset. The plain decoder costs ~3 allocs per report (host
// string, chain header, DER copy); this is the per-request delta the
// pooled HTTP handlers bank on.
func TestArenaDecodeAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	reports := make([]Report, 0, 32)
	for i := 0; i < 32; i++ {
		reports = append(reports, Report{
			Host:     []string{"a.example", "b.example"}[i%2],
			ChainDER: [][]byte{bytes.Repeat([]byte{0x30}, 700), bytes.Repeat([]byte{0x31}, 900)},
			Trace:    uint64(i),
		})
	}
	stream, err := EncodeReports(reports)
	if err != nil {
		t.Fatal(err)
	}

	r := bytes.NewReader(stream)
	a := NewArena()
	dec := NewArenaDecoder(r, a)
	decodeAll := func() {
		r.Reset(stream)
		dec.Reset(r)
		n := 0
		for {
			if _, err := dec.Next(); err != nil {
				break
			}
			n++
		}
		if n != len(reports) {
			t.Fatalf("decoded %d reports, want %d", n, len(reports))
		}
		a.Reset()
	}
	decodeAll() // warm: grow arena blocks, intern hosts
	allocs := testing.AllocsPerRun(100, decodeAll)
	if allocs > 0 {
		t.Fatalf("warm arena decode allocates %.2f per %d-report stream, want 0", allocs, len(reports))
	}
}
