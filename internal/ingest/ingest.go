// Package ingest is the concurrent measurement-ingestion data plane
// between the reporting server (core.Collector) and the measurement store
// (store.DB).
//
// The paper's second study pushed 12.3M measurements through one reporting
// server into "a database, where we can run queries" (§5.1). The seed
// reproduction serialized that path behind store.DB's single mutex; at
// production scale (the ROADMAP north star: sustained, bursty report
// streams from millions of clients) the ingest path is the bottleneck.
// This package industrializes it in three layers:
//
//   - Batching: BatchSink receives measurements in amortized batches;
//     Batcher adapts the one-at-a-time core.Sink producer side, and
//     SinkAdapter wraps any existing core.Sink as a BatchSink consumer.
//   - Sharding: Pipeline hash-partitions the stream (by probed host or by
//     client IP) onto N independent store.DB shards fed through bounded
//     channels, with explicit backpressure or drop accounting — the 0.41%
//     proxied tail must not vanish silently under load.
//   - Merging: store.Merge folds the shard databases back into one DB
//     whose every table and aggregate matches the single-threaded result.
//
// A compact binary wire codec (wire.go) replaces per-request concatenated
// PEM re-parsing on the client→reportd upload path; BatchHandler (http.go)
// serves it at /ingest/batch.
package ingest

import (
	"sync"

	"tlsfof/internal/core"
)

// BatchSink receives completed measurements in batches. Implementations
// must be safe for concurrent use. Callers hand over ownership of the
// batch slice; they must not reuse it after the call.
type BatchSink interface {
	IngestBatch([]core.Measurement)
}

// BatchSinkFunc adapts a function to the BatchSink interface.
type BatchSinkFunc func([]core.Measurement)

// IngestBatch calls f(batch).
func (f BatchSinkFunc) IngestBatch(batch []core.Measurement) { f(batch) }

// SinkAdapter presents any core.Sink as a BatchSink by replaying the batch
// one measurement at a time. It is the compatibility shim that lets the
// batched data plane feed legacy sinks (including store.DB itself).
type SinkAdapter struct {
	Sink core.Sink
}

// IngestBatch delivers each measurement in order.
func (a SinkAdapter) IngestBatch(batch []core.Measurement) {
	for _, m := range batch {
		a.Sink.Ingest(m)
	}
}

// DefaultBatchSize is the batch length Batcher and Pipeline use when the
// caller does not choose one. Large enough to amortize per-batch costs
// (channel handoff, lock acquisition), small enough that a batch stays
// cache-resident.
const DefaultBatchSize = 256

// ownedBatchSink is the recycling fast path a BatchSink may offer:
// takeBatch mints a buffer the sink owns, and ingestOwnedBatch delivers
// it with permission to recycle. Pipeline implements it; Batcher probes
// for it so the Batcher→Pipeline seam runs entirely on pooled frames.
type ownedBatchSink interface {
	takeBatch(capHint int) []core.Measurement
	ingestOwnedBatch([]core.Measurement)
}

// Batcher is a core.Sink that accumulates measurements and forwards
// size-limited batches to a BatchSink. It is safe for concurrent use, but
// peak throughput comes from one Batcher per producer goroutine (no lock
// contention); the downstream BatchSink serializes as needed.
//
// When the sink is a Pipeline (or anything else implementing the
// unexported recycling interface), batch buffers are drawn from and
// returned to the sink's frame pool; for any other sink each batch is a
// fresh allocation, because generic sinks may retain the slice.
//
// Call Flush (or Close) after the final Ingest — a partial batch otherwise
// stays buffered.
type Batcher struct {
	sink  BatchSink
	owned ownedBatchSink // non-nil when sink recycles frames
	size  int

	mu  sync.Mutex
	buf []core.Measurement
}

// NewBatcher returns a Batcher forwarding to sink in batches of size
// (DefaultBatchSize when size <= 0).
func NewBatcher(sink BatchSink, size int) *Batcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	b := &Batcher{sink: sink, size: size}
	if os, ok := sink.(ownedBatchSink); ok {
		b.owned = os
		b.buf = os.takeBatch(size)
	} else {
		b.buf = make([]core.Measurement, 0, size)
	}
	return b
}

// nextBuf replaces the full/flushed buffer under b.mu.
func (b *Batcher) nextBuf() []core.Measurement {
	if b.owned != nil {
		return b.owned.takeBatch(b.size)
	}
	return make([]core.Measurement, 0, b.size)
}

// forward delivers a completed batch outside b.mu.
func (b *Batcher) forward(batch []core.Measurement) {
	if b.owned != nil {
		b.owned.ingestOwnedBatch(batch)
		return
	}
	b.sink.IngestBatch(batch)
}

// Ingest buffers m, forwarding a full batch downstream when the buffer
// reaches the configured size.
func (b *Batcher) Ingest(m core.Measurement) {
	b.mu.Lock()
	b.buf = append(b.buf, m)
	if len(b.buf) < b.size {
		b.mu.Unlock()
		return
	}
	batch := b.buf
	b.buf = b.nextBuf()
	b.mu.Unlock()
	b.forward(batch)
}

// Flush forwards any buffered partial batch downstream.
func (b *Batcher) Flush() {
	b.mu.Lock()
	if len(b.buf) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.buf
	b.buf = b.nextBuf()
	b.mu.Unlock()
	b.forward(batch)
}
