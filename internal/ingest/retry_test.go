package ingest

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tlsfof/internal/faultnet"
)

// retryReport is a minimal valid report for upload tests.
var retryReport = Report{Host: "example.test", ChainDER: [][]byte{{0x30, 0x01, 0x02}}}

// killingHandler kills the first n connections at the TCP level (the
// partial-flush failure a hostile wire produces), then answers like the
// batch endpoint.
func killingHandler(n int64) http.HandlerFunc {
	var served atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) <= n {
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server not hijackable")
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		json.NewEncoder(w).Encode(BatchResult{Accepted: 1})
	}
}

func TestClientRetriesKilledFlush(t *testing.T) {
	srv := httptest.NewServer(killingHandler(1))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 2
	c.RetryDelay = time.Millisecond
	if err := c.Report(retryReport); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush after one killed attempt: %v", err)
	}
	st := c.Stats()
	if st.Retries != 1 || st.PostErrors != 0 || st.Accepted != 1 {
		t.Fatalf("stats = %+v, want 1 retry, 0 post errors, 1 accepted", st)
	}
}

func TestClientRetriesExhausted(t *testing.T) {
	srv := httptest.NewServer(killingHandler(1 << 30))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 2
	c.RetryDelay = time.Millisecond
	c.Report(retryReport)
	err := c.Flush()
	if err == nil {
		t.Fatalf("flush succeeded against a connection-killing server")
	}
	st := c.Stats()
	if st.Retries != 2 || st.PostErrors != 1 {
		t.Fatalf("stats = %+v, want 2 retries then 1 post error", st)
	}
}

func TestClientDoesNotRetryDecodedRejection(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(BatchResult{Error: "bad wire magic"})
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 3
	c.RetryDelay = time.Millisecond
	c.Report(retryReport)
	err := c.Flush()
	if err == nil || !strings.Contains(err.Error(), "bad wire magic") {
		t.Fatalf("flush error = %v, want the server's decoded verdict", err)
	}
	st := c.Stats()
	if posts.Load() != 1 || st.Retries != 0 {
		t.Fatalf("decoded rejection was retried: %d posts, stats %+v", posts.Load(), st)
	}
}

func TestClientRetries5xx(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) == 1 {
			// A decodable body on a 5xx must not fold into the stats —
			// the batch is about to be re-sent and would double-count.
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(BatchResult{Accepted: 99})
			return
		}
		json.NewEncoder(w).Encode(BatchResult{Accepted: 1})
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 1
	c.RetryDelay = time.Millisecond
	c.Report(retryReport)
	if err := c.Flush(); err != nil {
		t.Fatalf("flush after a 503: %v", err)
	}
	st := c.Stats()
	if st.Retries != 1 || st.Accepted != 1 || st.PostErrors != 0 {
		t.Fatalf("stats = %+v (a retried 503's Accepted must not fold)", st)
	}
}

// TestClientDoesNotRetryWrongEndpoint: a 404's HTML page fails
// identically every time — deterministic endpoint mismatches must not
// burn retry backoff inside the probe workers' flush path.
func TestClientDoesNotRetryWrongEndpoint(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 3
	c.RetryDelay = time.Millisecond
	c.Report(retryReport)
	if err := c.Flush(); err == nil {
		t.Fatalf("flush against a 404 succeeded")
	}
	st := c.Stats()
	if posts.Load() != 1 || st.Retries != 0 || st.PostErrors != 1 {
		t.Fatalf("404 was retried: %d posts, stats %+v", posts.Load(), st)
	}
}

// TestClientRetriesThroughFaultTransport drives the upload through a
// faultnet plan that resets the first connection and leaves the second
// clean — the ingest-client mount point of the fault plane, end to end.
func TestClientRetriesThroughFaultTransport(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(BatchResult{Accepted: 1})
	}))
	defer srv.Close()
	plan := faultnet.NewPlan(11,
		faultnet.Scenario{Name: "reset", ResetReadAt: 1},
		faultnet.Scenario{Name: "clean"},
	)
	c := NewClient(srv.URL)
	c.HTTPClient = &http.Client{Transport: plan.Transport()}
	c.Retries = 3
	c.RetryDelay = time.Millisecond
	c.Report(retryReport)
	if err := c.Flush(); err != nil {
		t.Fatalf("flush through fault transport: %v", err)
	}
	st := c.Stats()
	if st.Accepted != 1 || st.Retries == 0 {
		t.Fatalf("stats = %+v, want an accepted batch after at least one retry", st)
	}
	fstats := plan.Stats()
	if fstats["reset"].Resets == 0 {
		t.Fatalf("fault plan stats show no injected reset: %+v", fstats)
	}
}
