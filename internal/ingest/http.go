package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/telemetry"
)

// maxBatchBytes bounds one /ingest/batch request body. At ~1-4 KiB per
// framed report this admits tens of thousands of reports per request.
const maxBatchBytes = 32 << 20

// decodeState is the per-request working set the batch handlers recycle:
// an arena-bound streaming decoder plus (for the routed handler) the
// accumulated report slice. The arena is reset when the state returns to
// the pool — the request's measurements are fully applied by then, and
// anything with a longer lifetime (interned hosts, chaincache entries)
// owns its own bytes.
type decodeState struct {
	arena   *Arena
	dec     *Decoder
	reports []Report
}

var decodePool = sync.Pool{New: func() any {
	a := NewArena()
	return &decodeState{arena: a, dec: NewArenaDecoder(nil, a)}
}}

// getDecodeState arms a pooled state for one request body.
func getDecodeState(body io.Reader) *decodeState {
	st := decodePool.Get().(*decodeState)
	st.dec.Reset(body)
	return st
}

// putDecodeState retires the request's decode memory: arena slices
// become invalid here, which is safe because every report was either
// ingested (copied into measurements) or abandoned with the request.
func (st *decodeState) put() {
	st.arena.Reset()
	clear(st.reports)
	st.reports = st.reports[:0]
	decodePool.Put(st)
}

// BatchResult is the JSON body BatchHandler returns: how many reports the
// collector accepted and how many it rejected (unknown host, unparsable
// chain).
type BatchResult struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error,omitempty"`
	// NotOwner reports that the receiving node does not own the batch's
	// hosts (cluster mode: the ring moved, or the node is draining). The
	// batch was NOT applied; the client should retry against Owner. This
	// is a routing verdict, not a terminal one — see Client.PostReports.
	NotOwner bool   `json:"not_owner,omitempty"`
	Owner    string `json:"owner,omitempty"`
	OwnerURL string `json:"owner_url,omitempty"`
	// Duplicate marks an ack answered from the node's dedup table: the
	// batch was applied by an earlier attempt whose ack never reached
	// the client. Accepted carries the original count; nothing was
	// re-applied.
	Duplicate bool `json:"duplicate,omitempty"`
}

// BatchHandler serves the binary batch-upload endpoint: POST a wire stream
// (see wire.go) of reports, all attributed to the connection's client IP
// and the collector's campaign label. Individually bad reports are counted
// and skipped; a malformed stream aborts the request after the reports
// already decoded were ingested.
func BatchHandler(col *core.Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		ip := core.ClientIPFromRequest(r)
		// MaxBytesReader (not a silent LimitReader) so an oversized
		// upload surfaces as 413 instead of masquerading as stream
		// corruption — or worse, as a clean EOF that drops the tail.
		body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
		st := getDecodeState(body)
		defer st.put()
		dec := st.dec
		tracer := col.Tracer
		var res BatchResult
		status := http.StatusOK
		for {
			start := stageStart(tracer)
			rep, err := dec.Next()
			if tracer != nil && err == nil {
				tracer.Record(telemetry.TraceID(rep.Trace), telemetry.StageDecode, start, time.Since(start))
			}
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				// Codec-level damage: nothing after this point can be
				// framed, so stop. Reports decoded before the damage
				// were already ingested; say so.
				res.Error = err.Error()
				status = http.StatusBadRequest
				var tooLarge *http.MaxBytesError
				if errors.As(err, &tooLarge) {
					res.Error = fmt.Sprintf("body exceeds %d bytes", maxBatchBytes)
					status = http.StatusRequestEntityTooLarge
				}
				break
			}
			if _, err := col.IngestTraced(ip, rep.Host, rep.ChainDER, col.Campaign, rep.Trace); err != nil {
				res.Rejected++
				continue
			}
			res.Accepted++
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(res)
	})
}

// StatsHandler serves the pipeline's ingest accounting as JSON.
func StatsHandler(p *Pipeline) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.Stats())
	})
}
