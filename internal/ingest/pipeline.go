package ingest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/durable"
	"tlsfof/internal/store"
	"tlsfof/internal/telemetry"
)

// ShardBy selects the hash key that routes a measurement to a shard.
type ShardBy int

const (
	// ByHost partitions on the probed host name (the default). The host
	// set is small and hot (1 or 18 hosts in the studies), so this keeps
	// each host's aggregates on one shard and needs no cross-shard
	// coordination for per-host tables.
	ByHost ShardBy = iota
	// ByClientIP partitions on the reporting client's address, spreading
	// load evenly even when one host dominates the stream.
	ByClientIP
)

// Config parameterizes a Pipeline.
type Config struct {
	// Shards is the number of independent ingest partitions (1 when <= 0).
	Shards int
	// BatchSize bounds batches built by the pipeline's own Sink face
	// (DefaultBatchSize when <= 0).
	BatchSize int
	// QueueDepth is the per-shard bounded-ring capacity in batches
	// (default 32 — one full commit group; at the default batch size
	// that is 8k measurements of buffering per shard). Depth is exact:
	// the ring admits precisely this many batches before blocking or
	// dropping. Every queued batch pins a pooled frame, so depth is also
	// the per-shard bound on a fresh pipeline's cold-start frame mints.
	QueueDepth int
	// Retain is the per-shard retained-proxied-record cap passed to each
	// shard store (<= 0 unlimited). A per-shard cap bounds memory but
	// makes the surviving record set depend on arrival timing; callers
	// needing deterministic retention (the study runner) leave this 0 and
	// cap in Merge instead.
	Retain int
	// Block selects backpressure semantics when a shard queue is full:
	// true blocks the producer (lossless), false drops the batch and
	// counts every dropped measurement (lossy but non-blocking).
	Block bool
	// ShardBy selects the partition key.
	ShardBy ShardBy
	// Sinks, when non-nil, overrides the per-shard consumer (testing and
	// alternate backends). The default builds one store.DB per shard;
	// with an override Stores and Merge see no databases.
	Sinks func(shard int) BatchSink

	// WALDir, honored by OpenPipeline, roots one durable WAL per shard
	// (shard-%03d subdirectories, internal/durable). Each batch is
	// appended to its shard's WAL before it reaches the shard store, so
	// every delivered measurement survives the process; OpenPipeline
	// recovers the shard stores from disk on boot. Incompatible with a
	// Sinks override (there is no store to recover into).
	WALDir string
	// WALSegmentBytes, WALSyncEvery, WALSyncEachAppend configure the
	// shard logs (durable defaults when zero). Appends never fsync on
	// the hot path unless WALSyncEachAppend is set; a background syncer
	// per shard makes frames durable on the WALSyncEvery cadence.
	WALSegmentBytes   int64
	WALSyncEvery      time.Duration
	WALSyncEachAppend bool

	// GroupCommit caps how many queued batches one shard worker folds
	// into a single WAL append (one lock acquisition, one fsync under
	// WALSyncEachAppend) when its ring has a backlog (default 32; 1
	// disables grouping). Grouping only ever combines batches that were
	// already queued, so it adds no latency to an idle shard.
	GroupCommit int

	// Tracer, when non-nil, records shard_queue / wal_append /
	// store_merge stage latencies per batch and keeps per-probe traces
	// alive through the pipeline for measurements carrying a trace ID.
	// Nil keeps the data path free of clock reads.
	Tracer *telemetry.Tracer
}

// walOptions builds the per-shard durable options.
func (cfg Config) walOptions(shard int) durable.Options {
	return durable.Options{
		Dir:            filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%03d", shard)),
		SegmentBytes:   cfg.WALSegmentBytes,
		SyncEvery:      cfg.WALSyncEvery,
		SyncEachAppend: cfg.WALSyncEachAppend,
		Retain:         cfg.Retain,
	}
}

// ShardStats is one shard's ingest accounting.
type ShardStats struct {
	// Enqueued counts measurements accepted onto the shard queue.
	Enqueued uint64
	// Ingested counts measurements the shard worker has delivered.
	Ingested uint64
	// Dropped counts measurements discarded because the queue was full
	// (always 0 under Block backpressure).
	Dropped uint64
	// Batches counts delivered batches.
	Batches uint64
	// Queue is the instantaneous queue length in batches.
	Queue int
	// WALErrors counts measurements whose write-ahead append failed
	// (they still reached the store: availability over durability).
	WALErrors uint64
}

// Stats is a point-in-time snapshot of pipeline accounting. Snapshots
// are coherent in one direction: Ingested <= Enqueued holds in every
// snapshot, even one taken mid-enqueue (see shard counter ordering).
type Stats struct {
	Shards []ShardStats
	// Enqueued, Ingested, Dropped, WALErrors are sums over shards.
	Enqueued  uint64
	Ingested  uint64
	Dropped   uint64
	WALErrors uint64
}

// shard is one ingest partition. Counter protocol: a producer adds to
// offered BEFORE the batch is published on the ring, so by the time a
// worker (or a concurrent Drain) can observe the batch, it is already
// counted — the pre-fix code counted after the channel send, and a
// Drain racing the send could capture a target that excluded an
// already-queued batch. A batch then resolves exactly once: into
// ingested (delivered to the sink) or into dropped (lossy mode, ring
// full — never published, and under a WAL never appended). Readers
// derive Enqueued = offered - dropped, loading ingested before dropped
// before offered so every snapshot satisfies Ingested <= Enqueued.
type shard struct {
	sink BatchSink
	db   *store.DB    // nil when Config.Sinks overrides
	wal  *durable.Log // nil without Config.WALDir
	q    *batchRing

	mu      sync.Mutex
	pending []core.Measurement

	offered  atomic.Uint64
	ingested atomic.Uint64
	dropped  atomic.Uint64
	batches  atomic.Uint64
	walErrs  atomic.Uint64

	// Drain parks on drainCond; the worker only takes drainMu when
	// drainWaiters says someone is parked, so the no-waiter fast path
	// is one atomic load per delivered group.
	drainMu      sync.Mutex
	drainCond    sync.Cond
	drainWaiters atomic.Int32
}

// enqueuedLoad derives the accepted-measurement count with the load
// ordering documented on shard.
func (sh *shard) enqueuedLoad() uint64 {
	dropped := sh.dropped.Load()
	offered := sh.offered.Load()
	return offered - dropped
}

// notifyProgress wakes Drain waiters after counter updates. The
// drainMu acquisition (empty critical section) orders the broadcast
// after a racing waiter's condition check: a waiter that registered
// and re-checked before our counter update will be parked inside Wait
// by the time we hold the lock, so the broadcast cannot be lost.
func (sh *shard) notifyProgress() {
	if sh.drainWaiters.Load() == 0 {
		return
	}
	sh.drainMu.Lock()
	sh.drainCond.Broadcast()
	sh.drainMu.Unlock()
}

// splitScratch is the recycled working set for IngestBatch's two-pass
// shard split (per-measurement shard index plus per-shard counts and
// sub-batch headers).
type splitScratch struct {
	idx    []uint16
	counts []int
	subs   [][]core.Measurement
}

// scratchPool is a mutex-guarded freelist of split scratch. Like
// bufPool, a plain freelist beats sync.Pool: the GC empties a sync.Pool
// every cycle, and a batch-heavy workload GCs often enough that the
// scratch (and its three grown slices) would be re-minted hundreds of
// times per benchmark op. Scratch demand is bounded by concurrent
// IngestBatch callers, so the list stays tiny.
type scratchPool struct {
	mu  sync.Mutex
	scs []*splitScratch
}

func (p *scratchPool) get() *splitScratch {
	p.mu.Lock()
	if n := len(p.scs); n > 0 {
		sc := p.scs[n-1]
		p.scs[n-1] = nil
		p.scs = p.scs[:n-1]
		p.mu.Unlock()
		return sc
	}
	p.mu.Unlock()
	return new(splitScratch)
}

func (p *scratchPool) put(sc *splitScratch) {
	p.mu.Lock()
	if len(p.scs) < 64 {
		p.scs = append(p.scs, sc)
	}
	p.mu.Unlock()
}

// Pipeline is the sharded ingest data plane. It is both a core.Sink (one
// measurement at a time, internally batched per shard) and a BatchSink
// (pre-batched input, split by shard). Producers may call Ingest and
// IngestBatch concurrently; call Flush to push partial per-shard batches,
// and Close exactly once after all producers have stopped.
//
// Batch frames recycle through an internal freelist: buffers the
// pipeline itself allocates (pending batches, shard-split sub-batches,
// Batcher buffers) are returned to the pool after delivery. Slices
// passed to the public IngestBatch are never recycled — the BatchSink
// ownership contract notwithstanding, the pipeline cannot know the
// caller won't reuse them — so external batches cost their own split
// copies and nothing more.
type Pipeline struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup
	closed atomic.Bool

	pool      bufPool
	splitPool scratchPool
}

// bufPool is a mutex-guarded freelist of measurement buffers. A plain
// freelist beats sync.Pool here: Put would escape the slice header to
// the heap (one allocation per recycle, the exact cost being removed),
// and the pipeline wants buffers to survive across GC cycles for the
// life of the process, not per-GC emptying.
type bufPool struct {
	mu   sync.Mutex
	bufs [][]core.Measurement
	max  int
	// minCap floors every minted buffer at the pipeline batch size, so a
	// recycled frame always fits the next pending batch or sub-batch and
	// append never regrows it (a small frame would otherwise circulate
	// through the freelist causing a growth allocation on every reuse).
	minCap int
}

func (p *bufPool) get(capHint int) []core.Measurement {
	p.mu.Lock()
	if n := len(p.bufs); n > 0 {
		b := p.bufs[n-1]
		p.bufs[n-1] = nil
		p.bufs = p.bufs[:n-1]
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	if capHint < p.minCap {
		capHint = p.minCap
	}
	return make([]core.Measurement, 0, capHint)
}

func (p *bufPool) put(b []core.Measurement) {
	if cap(b) == 0 {
		return
	}
	// Clear the full capacity: entries beyond a future len would
	// otherwise pin Measurement strings from retired batches.
	clear(b[:cap(b)])
	p.mu.Lock()
	if len(p.bufs) < p.max {
		p.bufs = append(p.bufs, b[:0])
	}
	p.mu.Unlock()
}

// NewPipeline builds the shard stores (or custom sinks), starts one worker
// goroutine per shard, and returns the running pipeline. Config.WALDir is
// ignored here — use OpenPipeline for the durable path.
func NewPipeline(cfg Config) *Pipeline {
	cfg.WALDir = ""
	p, _, err := openPipeline(cfg)
	if err != nil {
		// Unreachable: every error path requires a WALDir.
		panic(err)
	}
	return p
}

// OpenPipeline is NewPipeline plus the persistence plane: with
// Config.WALDir set it recovers each shard store from its WAL directory
// (snapshot + surviving tail) before starting the workers, and returns
// the per-shard recovery reports. Shard count is pinned by a manifest in
// WALDir — the hash partition must not move between runs, or replayed
// aggregates would land on the wrong shard's WAL.
func OpenPipeline(cfg Config) (*Pipeline, []durable.Info, error) {
	return openPipeline(cfg)
}

func openPipeline(cfg Config) (*Pipeline, []durable.Info, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > 1024 {
		// Far beyond any useful core count, and keeps the batch-split
		// index comfortably inside uint16.
		cfg.Shards = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.GroupCommit <= 0 {
		cfg.GroupCommit = 32
	}
	if cfg.WALDir != "" && cfg.Sinks != nil {
		return nil, nil, fmt.Errorf("ingest: WALDir is incompatible with a Sinks override")
	}
	var infos []durable.Info
	if cfg.WALDir != "" {
		if err := checkShardManifest(cfg.WALDir, cfg.Shards); err != nil {
			return nil, nil, err
		}
	}
	p := &Pipeline{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	// Bound the freelist by the most buffers that can be in flight at
	// once: every ring slot full on every shard, plus pending buffers
	// and a little slack for buffers between pop and put.
	p.pool.max = cfg.Shards*(cfg.QueueDepth+4) + 16
	p.pool.minCap = cfg.BatchSize
	for i := range p.shards {
		sh := &shard{q: newBatchRing(cfg.QueueDepth)}
		sh.drainCond.L = &sh.drainMu
		switch {
		case cfg.Sinks != nil:
			sh.sink = cfg.Sinks(i)
		case cfg.WALDir != "":
			// Recover walks the shard's snapshot + segments to rebuild
			// the store; Open walks the segments again to find its append
			// point and repair any torn tail. Boot therefore reads the
			// WAL twice — acceptable because checkpoints keep the segment
			// tail small (a clean shutdown leaves a single snapshot and
			// no segments at all).
			opt := cfg.walOptions(i)
			db, info, err := durable.Recover(opt)
			if err != nil {
				return nil, nil, err
			}
			wal, err := durable.Open(opt)
			if err != nil {
				return nil, nil, err
			}
			sh.db, sh.wal, sh.sink = db, wal, db
			infos = append(infos, info)
		default:
			sh.db = store.New(cfg.Retain)
			sh.sink = sh.db // store.DB batch-ingests natively
		}
		p.shards[i] = sh
	}
	for _, sh := range p.shards {
		p.wg.Add(1)
		go p.work(sh)
	}
	return p, infos, nil
}

// shardManifest pins the WAL directory to one shard layout and, in
// cluster mode, to one node identity.
type shardManifest struct {
	Shards int    `json:"shards"`
	Node   string `json:"node,omitempty"`
}

func checkShardManifest(dir string, shards int) error {
	return PinShardManifest(dir, shards, "")
}

// PinShardManifest pins dir to a shard count and (when node is
// non-empty) a cluster node identity, writing the manifest on first use
// and refusing any later open that disagrees: a changed shard count
// would silently move the hash partition, and a shard directory grafted
// onto a different node would double-count its frames after a replica
// recovery.
func PinShardManifest(dir string, shards int, node string) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	path := filepath.Join(dir, "manifest.json")
	b, err := os.ReadFile(path)
	if err == nil {
		var m shardManifest
		if err := json.Unmarshal(b, &m); err != nil {
			return fmt.Errorf("ingest: %s: %w", path, err)
		}
		if m.Shards != shards {
			return fmt.Errorf("ingest: %s was written with %d shards, refusing to open with %d (the hash partition would move)", dir, m.Shards, shards)
		}
		if m.Node != node {
			return fmt.Errorf("ingest: %s was written by node %q, refusing to open as node %q", dir, m.Node, node)
		}
		return nil
	}
	if !os.IsNotExist(err) {
		return fmt.Errorf("ingest: %w", err)
	}
	b, _ = json.Marshal(shardManifest{Shards: shards, Node: node})
	if err := os.WriteFile(path, append(b, '\n'), 0o666); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	return nil
}

// work is the shard consumer: it blocks for one batch, opportunistically
// drains up to GroupCommit-1 more that are already queued, write-aheads
// the whole group as one WAL append (one fsync under SyncEachAppend),
// then delivers each batch to the sink and recycles pipeline-owned
// frames. Group commit amortizes the WAL lock/fsync across a backlog
// without delaying an idle shard: a lone batch forms a group of one.
func (p *Pipeline) work(sh *shard) {
	defer p.wg.Done()
	tr := p.cfg.Tracer
	group := make([]queued, 0, p.cfg.GroupCommit)
	var views [][]core.Measurement
	if sh.wal != nil {
		views = make([][]core.Measurement, 0, p.cfg.GroupCommit)
	}
	for {
		it, ok := sh.q.popWait()
		if !ok {
			break
		}
		group = append(group[:0], it)
		for len(group) < p.cfg.GroupCommit {
			nxt, ok := sh.q.tryPop()
			if !ok {
				break
			}
			group = append(group, nxt)
		}
		if tr != nil {
			// Queue wait is a per-batch stage; traced measurements inside
			// a batch get a span without multiplying the histogram.
			for i := range group {
				if at := group[i].enqueuedAt; !at.IsZero() {
					wait := time.Since(at)
					tr.Observe(telemetry.StageQueue, wait)
					recordBatchSpans(tr, group[i].ms, telemetry.StageQueue, at, wait)
				}
			}
		}
		if sh.wal != nil {
			// Write-ahead: the group hits the WAL before the store, so
			// anything visible in a merge/table is also on its way to
			// disk. Append errors degrade durability, never availability.
			views = views[:0]
			for i := range group {
				views = append(views, group[i].ms)
			}
			start := stageStart(tr)
			err := sh.wal.AppendGroup(views)
			if tr != nil {
				d := time.Since(start)
				tr.Observe(telemetry.StageWAL, d)
				for i := range group {
					recordBatchSpans(tr, group[i].ms, telemetry.StageWAL, start, d)
				}
			}
			if err != nil {
				var n int
				for i := range group {
					n += len(group[i].ms)
				}
				sh.walErrs.Add(uint64(n))
			}
		}
		for i := range group {
			batch := group[i].ms
			start := stageStart(tr)
			sh.sink.IngestBatch(batch)
			if tr != nil {
				d := time.Since(start)
				tr.Observe(telemetry.StageStore, d)
				recordBatchSpans(tr, batch, telemetry.StageStore, start, d)
			}
			sh.ingested.Add(uint64(len(batch)))
			sh.batches.Add(1)
			if group[i].owned {
				p.pool.put(batch)
			}
			group[i] = queued{}
		}
		sh.notifyProgress()
	}
	// Wake any waiter parked across worker exit (e.g. Drain racing
	// Close) so it re-checks instead of sleeping forever.
	sh.drainMu.Lock()
	sh.drainCond.Broadcast()
	sh.drainMu.Unlock()
}

// stageStart reads the clock only when a tracer will consume it.
func stageStart(tr *telemetry.Tracer) time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// recordBatchSpans attaches a per-batch stage to every traced measurement
// in the batch (span-only: the batch observed the histogram once).
func recordBatchSpans(tr *telemetry.Tracer, batch []core.Measurement, stage string, start time.Time, d time.Duration) {
	for i := range batch {
		if t := batch[i].Trace; t != 0 {
			tr.RecordSpan(telemetry.TraceID(t), stage, start, d)
		}
	}
}

// shardIndex routes one measurement.
func (p *Pipeline) shardIndex(m core.Measurement) int {
	if len(p.shards) == 1 {
		return 0
	}
	var h uint32
	if p.cfg.ShardBy == ByClientIP {
		h = fnv1a32(nil, m.ClientIP)
	} else {
		h = fnv1a32([]byte(m.Host), 0)
	}
	return int(h % uint32(len(p.shards)))
}

// fnv1a32 hashes s then the big-endian bytes of v when s is nil.
func fnv1a32(s []byte, v uint32) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	if s == nil {
		s = []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	}
	for _, b := range s {
		h ^= uint32(b)
		h *= prime
	}
	return h
}

// Ingest implements core.Sink: it appends m to the target shard's pending
// batch and enqueues the batch once full. Pending buffers come from and
// return to the frame pool.
func (p *Pipeline) Ingest(m core.Measurement) {
	sh := p.shards[p.shardIndex(m)]
	sh.mu.Lock()
	if sh.pending == nil {
		sh.pending = p.pool.get(p.cfg.BatchSize)
	}
	sh.pending = append(sh.pending, m)
	if len(sh.pending) < p.cfg.BatchSize {
		sh.mu.Unlock()
		return
	}
	batch := sh.pending
	sh.pending = nil
	sh.mu.Unlock()
	p.enqueue(sh, batch, true)
}

// IngestBatch implements BatchSink: the batch is split by shard and each
// sub-batch enqueued directly, bypassing the pending buffers. The split is
// two-pass (count, then fill exact-length sub-batches) over pooled
// scratch, so a steady-state split allocates nothing. The input slice is
// never retained or recycled (see Pipeline doc).
func (p *Pipeline) IngestBatch(batch []core.Measurement) {
	p.ingestBatch(batch, false)
}

// takeBatch hands a pooled buffer to an internal producer (Batcher);
// the buffer returns to the pool via ingestOwnedBatch delivery.
func (p *Pipeline) takeBatch(capHint int) []core.Measurement {
	return p.pool.get(capHint)
}

// ingestOwnedBatch is IngestBatch for buffers minted by takeBatch: the
// pipeline recycles them once delivered (or dropped, or split).
func (p *Pipeline) ingestOwnedBatch(batch []core.Measurement) {
	p.ingestBatch(batch, true)
}

func (p *Pipeline) ingestBatch(batch []core.Measurement, owned bool) {
	ns := len(p.shards)
	if ns == 1 {
		p.enqueue(p.shards[0], batch, owned)
		return
	}
	sc := p.splitPool.get()
	if cap(sc.idx) < len(batch) {
		sc.idx = make([]uint16, len(batch))
	}
	if cap(sc.counts) < ns {
		sc.counts = make([]int, ns)
		sc.subs = make([][]core.Measurement, ns)
	}
	idx := sc.idx[:len(batch)]
	counts := sc.counts[:ns]
	subs := sc.subs[:ns]
	for i := range counts {
		counts[i] = 0
	}
	for i, m := range batch {
		s := p.shardIndex(m)
		idx[i] = uint16(s)
		counts[s]++
	}
	for s, c := range counts {
		if c > 0 {
			subs[s] = p.pool.get(c)
		}
	}
	for i, m := range batch {
		s := idx[i]
		subs[s] = append(subs[s], m)
	}
	for s, sub := range subs {
		if sub != nil {
			p.enqueue(p.shards[s], sub, true)
			subs[s] = nil
		}
	}
	p.splitPool.put(sc)
	if owned {
		p.pool.put(batch)
	}
}

// enqueue publishes a batch on its shard ring. The offered counter is
// bumped before publication (see shard doc); a lossy drop then moves
// the batch from offered to dropped, so offered == ingested + dropped
// once the pipeline quiesces.
func (p *Pipeline) enqueue(sh *shard, batch []core.Measurement, owned bool) {
	if len(batch) == 0 {
		if owned {
			p.pool.put(batch)
		}
		return
	}
	sh.offered.Add(uint64(len(batch)))
	it := queued{ms: batch, owned: owned, enqueuedAt: stageStart(p.cfg.Tracer)}
	if p.cfg.Block {
		sh.q.push(it)
		return
	}
	if !sh.q.tryPush(it) {
		sh.dropped.Add(uint64(len(batch)))
		sh.notifyProgress()
		if owned {
			p.pool.put(batch)
		}
	}
}

// Flush enqueues every shard's pending partial batch.
func (p *Pipeline) Flush() {
	for _, sh := range p.shards {
		sh.mu.Lock()
		batch := sh.pending
		sh.pending = nil
		sh.mu.Unlock()
		if batch != nil {
			p.enqueue(sh, batch, true)
		}
	}
}

// Drain flushes pending batches and blocks until every measurement
// enqueued before the call has been delivered to its shard sink (or, in
// lossy mode, dropped), so a subsequent Merge sees everything that will
// ever arrive from this point's backlog. Producers may keep ingesting
// concurrently; their later measurements are not waited for. Waiting is
// event-driven: the shard worker signals per delivered group, so Drain
// returns as soon as the last backlog batch lands rather than on a
// sleep quantum.
func (p *Pipeline) Drain() {
	p.Flush()
	targets := make([]uint64, len(p.shards))
	for i, sh := range p.shards {
		targets[i] = sh.offered.Load()
	}
	for i, sh := range p.shards {
		target := targets[i]
		if sh.ingested.Load()+sh.dropped.Load() >= target {
			continue
		}
		sh.drainWaiters.Add(1)
		sh.drainMu.Lock()
		for sh.ingested.Load()+sh.dropped.Load() < target {
			sh.drainCond.Wait()
		}
		sh.drainMu.Unlock()
		sh.drainWaiters.Add(-1)
	}
}

// Close flushes pending batches, stops the shard workers, waits for the
// queues to drain, and closes the shard WALs (final fsync). It must be
// called exactly once, after every producer has stopped; Ingest after
// Close panics. The returned error is the first WAL close failure (nil
// without WALs).
func (p *Pipeline) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	p.Flush()
	for _, sh := range p.shards {
		sh.q.close()
	}
	p.wg.Wait()
	var first error
	for _, sh := range p.shards {
		if sh.wal != nil {
			if err := sh.wal.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Checkpoint seals and compacts every shard WAL: each shard's appended
// frames fold into its snapshot and the covered segments are deleted,
// bounding disk while the pipeline keeps serving. Call it on a timer
// (reportd's -snapshot-every) or before shutdown.
func (p *Pipeline) Checkpoint() error {
	var first error
	for _, sh := range p.shards {
		if sh.wal == nil {
			continue
		}
		if _, err := sh.wal.Checkpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WALStats returns per-shard durable accounting (nil without WALs).
func (p *Pipeline) WALStats() []durable.Stats {
	var out []durable.Stats
	for _, sh := range p.shards {
		if sh.wal != nil {
			out = append(out, sh.wal.Stats())
		}
	}
	return out
}

// Stores returns the per-shard databases (nil entries under a Sinks
// override).
func (p *Pipeline) Stores() []*store.DB {
	dbs := make([]*store.DB, len(p.shards))
	for i, sh := range p.shards {
		dbs[i] = sh.db
	}
	return dbs
}

// Merge folds the shard databases into one deterministic store.DB (see
// store.Merge). After Close the result is exact; on a live pipeline it is
// a point-in-time snapshot that misses queued-but-undelivered batches.
func (p *Pipeline) Merge(retainLimit int) *store.DB {
	return store.Merge(retainLimit, p.Stores()...)
}

// MountMetrics bridges the pipeline's accounting into a telemetry
// registry as scrape-time gauges, so the unified /metrics exposition
// carries ingest totals without double counting.
func (p *Pipeline) MountMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("ingest_enqueued_total", "measurements accepted onto shard queues", func() float64 {
		var n uint64
		for _, sh := range p.shards {
			n += sh.enqueuedLoad()
		}
		return float64(n)
	})
	reg.GaugeFunc("ingest_ingested_total", "measurements delivered to shard sinks", func() float64 {
		var n uint64
		for _, sh := range p.shards {
			n += sh.ingested.Load()
		}
		return float64(n)
	})
	reg.GaugeFunc("ingest_dropped_total", "measurements discarded on full queues", func() float64 {
		var n uint64
		for _, sh := range p.shards {
			n += sh.dropped.Load()
		}
		return float64(n)
	})
	reg.GaugeFunc("ingest_wal_errors_total", "measurements whose write-ahead append failed", func() float64 {
		var n uint64
		for _, sh := range p.shards {
			n += sh.walErrs.Load()
		}
		return float64(n)
	})
	reg.GaugeFunc("ingest_queue_depth", "queued batches across shards", func() float64 {
		var n int
		for _, sh := range p.shards {
			n += sh.q.len()
		}
		return float64(n)
	})
}

// Stats snapshots the ingest accounting.
func (p *Pipeline) Stats() Stats {
	s := Stats{Shards: make([]ShardStats, len(p.shards))}
	for i, sh := range p.shards {
		// Load order matters for the Ingested <= Enqueued invariant:
		// effects before causes (ingested, then dropped, then offered).
		ingested := sh.ingested.Load()
		ss := ShardStats{
			Ingested:  ingested,
			Batches:   sh.batches.Load(),
			Queue:     sh.q.len(),
			WALErrors: sh.walErrs.Load(),
		}
		dropped := sh.dropped.Load()
		offered := sh.offered.Load()
		ss.Dropped = dropped
		ss.Enqueued = offered - dropped
		s.Shards[i] = ss
		s.Enqueued += ss.Enqueued
		s.Ingested += ss.Ingested
		s.Dropped += ss.Dropped
		s.WALErrors += ss.WALErrors
	}
	return s
}

// String renders a one-line accounting summary.
func (s Stats) String() string {
	return fmt.Sprintf("ingest: %d shards, %d enqueued, %d ingested, %d dropped",
		len(s.Shards), s.Enqueued, s.Ingested, s.Dropped)
}
