package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/store"
)

// ShardBy selects the hash key that routes a measurement to a shard.
type ShardBy int

const (
	// ByHost partitions on the probed host name (the default). The host
	// set is small and hot (1 or 18 hosts in the studies), so this keeps
	// each host's aggregates on one shard and needs no cross-shard
	// coordination for per-host tables.
	ByHost ShardBy = iota
	// ByClientIP partitions on the reporting client's address, spreading
	// load evenly even when one host dominates the stream.
	ByClientIP
)

// Config parameterizes a Pipeline.
type Config struct {
	// Shards is the number of independent ingest partitions (1 when <= 0).
	Shards int
	// BatchSize bounds batches built by the pipeline's own Sink face
	// (DefaultBatchSize when <= 0).
	BatchSize int
	// QueueDepth is the per-shard bounded-channel capacity in batches
	// (default 64).
	QueueDepth int
	// Retain is the per-shard retained-proxied-record cap passed to each
	// shard store (<= 0 unlimited). A per-shard cap bounds memory but
	// makes the surviving record set depend on arrival timing; callers
	// needing deterministic retention (the study runner) leave this 0 and
	// cap in Merge instead.
	Retain int
	// Block selects backpressure semantics when a shard queue is full:
	// true blocks the producer (lossless), false drops the batch and
	// counts every dropped measurement (lossy but non-blocking).
	Block bool
	// ShardBy selects the partition key.
	ShardBy ShardBy
	// Sinks, when non-nil, overrides the per-shard consumer (testing and
	// alternate backends). The default builds one store.DB per shard;
	// with an override Stores and Merge see no databases.
	Sinks func(shard int) BatchSink
}

// ShardStats is one shard's ingest accounting.
type ShardStats struct {
	// Enqueued counts measurements accepted onto the shard queue.
	Enqueued uint64
	// Ingested counts measurements the shard worker has delivered.
	Ingested uint64
	// Dropped counts measurements discarded because the queue was full
	// (always 0 under Block backpressure).
	Dropped uint64
	// Batches counts delivered batches.
	Batches uint64
	// Queue is the instantaneous queue length in batches.
	Queue int
}

// Stats is a point-in-time snapshot of pipeline accounting.
type Stats struct {
	Shards []ShardStats
	// Enqueued, Ingested, Dropped are sums over shards.
	Enqueued uint64
	Ingested uint64
	Dropped  uint64
}

type shard struct {
	sink BatchSink
	db   *store.DB // nil when Config.Sinks overrides
	ch   chan []core.Measurement

	mu      sync.Mutex
	pending []core.Measurement

	enqueued atomic.Uint64
	ingested atomic.Uint64
	dropped  atomic.Uint64
	batches  atomic.Uint64
}

// Pipeline is the sharded ingest data plane. It is both a core.Sink (one
// measurement at a time, internally batched per shard) and a BatchSink
// (pre-batched input, split by shard). Producers may call Ingest and
// IngestBatch concurrently; call Flush to push partial per-shard batches,
// and Close exactly once after all producers have stopped.
type Pipeline struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewPipeline builds the shard stores (or custom sinks), starts one worker
// goroutine per shard, and returns the running pipeline.
func NewPipeline(cfg Config) *Pipeline {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > 1024 {
		// Far beyond any useful core count, and keeps the batch-split
		// index comfortably inside uint16.
		cfg.Shards = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	p := &Pipeline{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range p.shards {
		sh := &shard{ch: make(chan []core.Measurement, cfg.QueueDepth)}
		if cfg.Sinks != nil {
			sh.sink = cfg.Sinks(i)
		} else {
			sh.db = store.New(cfg.Retain)
			sh.sink = sh.db // store.DB batch-ingests natively
		}
		p.shards[i] = sh
		p.wg.Add(1)
		go p.work(sh)
	}
	return p
}

func (p *Pipeline) work(sh *shard) {
	defer p.wg.Done()
	for batch := range sh.ch {
		sh.sink.IngestBatch(batch)
		sh.ingested.Add(uint64(len(batch)))
		sh.batches.Add(1)
	}
}

// shardIndex routes one measurement.
func (p *Pipeline) shardIndex(m core.Measurement) int {
	if len(p.shards) == 1 {
		return 0
	}
	var h uint32
	if p.cfg.ShardBy == ByClientIP {
		h = fnv1a32(nil, m.ClientIP)
	} else {
		h = fnv1a32([]byte(m.Host), 0)
	}
	return int(h % uint32(len(p.shards)))
}

// fnv1a32 hashes s then the big-endian bytes of v when s is nil.
func fnv1a32(s []byte, v uint32) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	if s == nil {
		s = []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	}
	for _, b := range s {
		h ^= uint32(b)
		h *= prime
	}
	return h
}

// Ingest implements core.Sink: it appends m to the target shard's pending
// batch and enqueues the batch once full.
func (p *Pipeline) Ingest(m core.Measurement) {
	sh := p.shards[p.shardIndex(m)]
	sh.mu.Lock()
	sh.pending = append(sh.pending, m)
	if len(sh.pending) < p.cfg.BatchSize {
		sh.mu.Unlock()
		return
	}
	batch := sh.pending
	sh.pending = make([]core.Measurement, 0, p.cfg.BatchSize)
	sh.mu.Unlock()
	p.enqueue(sh, batch)
}

// IngestBatch implements BatchSink: the batch is split by shard and each
// sub-batch enqueued directly, bypassing the pending buffers. The split is
// two-pass (count, then fill exact-capacity sub-batches) so the hot path
// never grows a slice.
func (p *Pipeline) IngestBatch(batch []core.Measurement) {
	ns := len(p.shards)
	if ns == 1 {
		p.enqueue(p.shards[0], batch)
		return
	}
	idx := make([]uint16, len(batch))
	counts := make([]int, ns)
	for i, m := range batch {
		s := p.shardIndex(m)
		idx[i] = uint16(s)
		counts[s]++
	}
	subs := make([][]core.Measurement, ns)
	for s, c := range counts {
		if c > 0 {
			subs[s] = make([]core.Measurement, 0, c)
		}
	}
	for i, m := range batch {
		s := idx[i]
		subs[s] = append(subs[s], m)
	}
	for s, sub := range subs {
		if sub != nil {
			p.enqueue(p.shards[s], sub)
		}
	}
}

func (p *Pipeline) enqueue(sh *shard, batch []core.Measurement) {
	if len(batch) == 0 {
		return
	}
	if p.cfg.Block {
		sh.ch <- batch
		sh.enqueued.Add(uint64(len(batch)))
		return
	}
	select {
	case sh.ch <- batch:
		sh.enqueued.Add(uint64(len(batch)))
	default:
		sh.dropped.Add(uint64(len(batch)))
	}
}

// Flush enqueues every shard's pending partial batch.
func (p *Pipeline) Flush() {
	for _, sh := range p.shards {
		sh.mu.Lock()
		batch := sh.pending
		sh.pending = nil
		sh.mu.Unlock()
		p.enqueue(sh, batch)
	}
}

// Drain flushes pending batches and blocks until every measurement
// enqueued before the call has been delivered to its shard sink, so a
// subsequent Merge sees them. Producers may keep ingesting concurrently;
// their later measurements are not waited for.
func (p *Pipeline) Drain() {
	p.Flush()
	targets := make([]uint64, len(p.shards))
	for i, sh := range p.shards {
		targets[i] = sh.enqueued.Load()
	}
	for i, sh := range p.shards {
		for sh.ingested.Load() < targets[i] {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// Close flushes pending batches, stops the shard workers, and waits for
// the queues to drain. It must be called exactly once, after every
// producer has stopped; Ingest after Close panics.
func (p *Pipeline) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	p.Flush()
	for _, sh := range p.shards {
		close(sh.ch)
	}
	p.wg.Wait()
}

// Stores returns the per-shard databases (nil entries under a Sinks
// override).
func (p *Pipeline) Stores() []*store.DB {
	dbs := make([]*store.DB, len(p.shards))
	for i, sh := range p.shards {
		dbs[i] = sh.db
	}
	return dbs
}

// Merge folds the shard databases into one deterministic store.DB (see
// store.Merge). After Close the result is exact; on a live pipeline it is
// a point-in-time snapshot that misses queued-but-undelivered batches.
func (p *Pipeline) Merge(retainLimit int) *store.DB {
	return store.Merge(retainLimit, p.Stores()...)
}

// Stats snapshots the ingest accounting.
func (p *Pipeline) Stats() Stats {
	s := Stats{Shards: make([]ShardStats, len(p.shards))}
	for i, sh := range p.shards {
		ss := ShardStats{
			Enqueued: sh.enqueued.Load(),
			Ingested: sh.ingested.Load(),
			Dropped:  sh.dropped.Load(),
			Batches:  sh.batches.Load(),
			Queue:    len(sh.ch),
		}
		s.Shards[i] = ss
		s.Enqueued += ss.Enqueued
		s.Ingested += ss.Ingested
		s.Dropped += ss.Dropped
	}
	return s
}

// String renders a one-line accounting summary.
func (s Stats) String() string {
	return fmt.Sprintf("ingest: %d shards, %d enqueued, %d ingested, %d dropped",
		len(s.Shards), s.Enqueued, s.Ingested, s.Dropped)
}
