package ingest

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzDecodeReports drives the streaming wire decoder over arbitrary
// bytes: it must terminate with a clean EOF or an explicit error —
// never panic, never allocate beyond the wire-format bounds — and any
// stream it fully accepts must re-encode and re-decode to the same
// reports.
func FuzzDecodeReports(f *testing.F) {
	seed, err := EncodeReports([]Report{
		{Host: "example.com", ChainDER: [][]byte{bytes.Repeat([]byte{0x30}, 900), {0x30, 0x01}}},
		{Host: "byu.edu", ChainDER: [][]byte{{0x01}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // truncated mid-frame
	f.Add([]byte("TFW1"))     // header only: clean empty stream
	f.Add([]byte("TFW0"))     // wrong version
	f.Add([]byte{})
	// Hostile uvarints: huge host length, huge cert count, huge cert len.
	f.Add([]byte("TFW1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add(append(append([]byte("TFW1"), 0x01, 'a'), 0xff, 0xff, 0xff, 0x0f))
	f.Fuzz(func(t *testing.T, stream []byte) {
		dec := NewDecoder(bytes.NewReader(stream))
		var reports []Report
		for {
			r, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // explicit rejection is a pass
			}
			if len(r.Host) == 0 || len(r.Host) > MaxWireHostLen ||
				len(r.ChainDER) == 0 || len(r.ChainDER) > MaxWireChainCerts {
				t.Fatalf("decoder emitted an out-of-bounds report: %d-byte host, %d certs", len(r.Host), len(r.ChainDER))
			}
			for _, der := range r.ChainDER {
				if len(der) == 0 || len(der) > MaxWireCertLen {
					t.Fatalf("decoder emitted a %d-byte certificate", len(der))
				}
			}
			reports = append(reports, r)
			if len(reports) > 1<<12 {
				t.Fatalf("unbounded report stream from %d input bytes", len(stream))
			}
		}
		if len(reports) == 0 {
			return
		}
		// Clean streams must round-trip.
		out, err := EncodeReports(reports)
		if err != nil {
			t.Fatalf("re-encode of decoded reports: %v", err)
		}
		dec2 := NewDecoder(bytes.NewReader(out))
		for i := range reports {
			r2, err := dec2.Next()
			if err != nil {
				t.Fatalf("re-decode report %d: %v", i, err)
			}
			if r2.Host != reports[i].Host || !reflect.DeepEqual(r2.ChainDER, reports[i].ChainDER) {
				t.Fatalf("report %d drifted through round trip", i)
			}
		}
		if _, err := dec2.Next(); err != io.EOF {
			t.Fatalf("re-decoded stream has trailing data: %v", err)
		}
	})
}
