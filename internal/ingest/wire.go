package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The upload wire format. The seed's /report endpoint made every client
// re-encode its captured DER chain as concatenated PEM (+33% size) and
// made reportd undo that per request; at fleet scale the base64 round
// trip is pure waste. The /ingest/batch endpoint instead streams this
// compact binary framing, many reports per connection:
//
//	stream = magic("TFW2") frame*
//	frame  = trace:uvarint hostLen:uvarint host:bytes certCount:uvarint
//	         (certLen:uvarint der:bytes)*
//
// TFW2 prefixes each frame with a telemetry trace ID (0 = untraced: one
// byte, so the cost of the field is a single byte per frame for fleets
// that don't trace). Version-1 streams ("TFW1") lack the trace field;
// the decoder accepts both, so old clients keep uploading unchanged.
//
// DER bytes travel untouched, so the decoder hands chains straight to
// core.Observe. The Decoder is streaming: it never buffers more than one
// frame, so a single connection can carry an unbounded report stream.

// wireMagic begins every stream the encoder writes: "TFW" + format
// version '2'. wireMagicV1 is the previous version, still decodable.
var (
	wireMagic   = [4]byte{'T', 'F', 'W', '2'}
	wireMagicV1 = [4]byte{'T', 'F', 'W', '1'}
)

// Wire-format limits; hostile clients exist (the /report endpoint bounds
// its uploads the same way).
const (
	// MaxWireHostLen bounds the probed host name (DNS's own limit).
	MaxWireHostLen = 255
	// MaxWireChainCerts bounds certificates per chain; real chains run
	// 1-4, the paper's longest observed substitute chains far fewer
	// than 16.
	MaxWireChainCerts = 16
	// MaxWireCertLen bounds one DER certificate.
	MaxWireCertLen = 256 << 10
)

// Report is one client upload: the probed host and the certificate chain
// the client actually received, leaf first, plus the probe's telemetry
// trace ID (0 when untraced).
type Report struct {
	Host     string
	ChainDER [][]byte
	Trace    uint64
}

// Encoder writes reports in the binary wire format. Not safe for
// concurrent use.
type Encoder struct {
	w           *bufio.Writer
	wroteHeader bool
	scratch     []byte
}

// NewEncoder returns an encoder writing the wire stream to w. Call Flush
// when done.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// Encode appends one report frame (writing the stream header first if
// this is the first frame).
func (e *Encoder) Encode(r Report) error {
	if len(r.Host) == 0 || len(r.Host) > MaxWireHostLen {
		return fmt.Errorf("ingest: host length %d outside [1,%d]", len(r.Host), MaxWireHostLen)
	}
	if len(r.ChainDER) == 0 || len(r.ChainDER) > MaxWireChainCerts {
		return fmt.Errorf("ingest: chain of %d certs outside [1,%d]", len(r.ChainDER), MaxWireChainCerts)
	}
	for _, der := range r.ChainDER {
		if len(der) == 0 || len(der) > MaxWireCertLen {
			return fmt.Errorf("ingest: certificate of %d bytes outside [1,%d]", len(der), MaxWireCertLen)
		}
	}
	if !e.wroteHeader {
		if _, err := e.w.Write(wireMagic[:]); err != nil {
			return err
		}
		e.wroteHeader = true
	}
	e.scratch = binary.AppendUvarint(e.scratch[:0], r.Trace)
	e.scratch = binary.AppendUvarint(e.scratch, uint64(len(r.Host)))
	e.scratch = append(e.scratch, r.Host...)
	e.scratch = binary.AppendUvarint(e.scratch, uint64(len(r.ChainDER)))
	if _, err := e.w.Write(e.scratch); err != nil {
		return err
	}
	for _, der := range r.ChainDER {
		e.scratch = binary.AppendUvarint(e.scratch[:0], uint64(len(der)))
		if _, err := e.w.Write(e.scratch); err != nil {
			return err
		}
		if _, err := e.w.Write(der); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered frames to the underlying writer.
func (e *Encoder) Flush() error { return e.w.Flush() }

// EncodeReports is a convenience one-shot encoding of reports into a
// complete wire stream.
func EncodeReports(reports []Report) ([]byte, error) {
	return AppendReports(nil, reports)
}

// AppendReports appends a complete wire stream (header + one frame per
// report) to dst and returns the extended slice — the zero-realloc
// encoding path: a caller recycling dst across batches allocates nothing
// once the buffer has grown to the working batch size. The validation is
// identical to Encoder.Encode.
func AppendReports(dst []byte, reports []Report) ([]byte, error) {
	dst = append(dst, wireMagic[:]...)
	for _, r := range reports {
		if len(r.Host) == 0 || len(r.Host) > MaxWireHostLen {
			return nil, fmt.Errorf("ingest: host length %d outside [1,%d]", len(r.Host), MaxWireHostLen)
		}
		if len(r.ChainDER) == 0 || len(r.ChainDER) > MaxWireChainCerts {
			return nil, fmt.Errorf("ingest: chain of %d certs outside [1,%d]", len(r.ChainDER), MaxWireChainCerts)
		}
		dst = binary.AppendUvarint(dst, r.Trace)
		dst = binary.AppendUvarint(dst, uint64(len(r.Host)))
		dst = append(dst, r.Host...)
		dst = binary.AppendUvarint(dst, uint64(len(r.ChainDER)))
		for _, der := range r.ChainDER {
			if len(der) == 0 || len(der) > MaxWireCertLen {
				return nil, fmt.Errorf("ingest: certificate of %d bytes outside [1,%d]", len(der), MaxWireCertLen)
			}
			dst = binary.AppendUvarint(dst, uint64(len(der)))
			dst = append(dst, der...)
		}
	}
	return dst, nil
}

// Decoder reads a wire stream one report at a time. Not safe for
// concurrent use.
type Decoder struct {
	r          *bufio.Reader
	readHeader bool
	// v1 marks a "TFW1" stream, whose frames carry no trace field.
	v1 bool
	// arena, when non-nil, receives decoded DER bytes and chain headers
	// in place (see Arena for the lifetime contract); host names intern
	// through it. Nil decodes into per-report heap copies.
	arena *Arena
	// hostBuf stages the host name before it becomes a string (plain
	// path) or an interned string (arena path): no transient allocation
	// either way.
	hostBuf [MaxWireHostLen]byte
}

// NewDecoder returns a streaming decoder over r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// NewArenaDecoder returns a streaming decoder whose reports decode in
// place into a: DER slices and chain headers alias arena memory and are
// valid until a.Reset(). The caller owns the arena lifecycle.
func NewArenaDecoder(r io.Reader, a *Arena) *Decoder {
	return &Decoder{r: bufio.NewReader(r), arena: a}
}

// Reset rearms the decoder for a new stream, keeping its read buffer and
// arena binding (the arena itself is not reset — that is the caller's
// batch-lifetime decision). The pooling hook for per-request handlers.
func (d *Decoder) Reset(r io.Reader) {
	d.r.Reset(r)
	d.readHeader = false
	d.v1 = false
}

// Next returns the next report. It returns io.EOF exactly at a clean
// stream end (after the header, on a frame boundary); a stream truncated
// mid-frame yields io.ErrUnexpectedEOF.
func (d *Decoder) Next() (Report, error) {
	if !d.readHeader {
		// Stage the magic through hostBuf: a local array would escape
		// through the io.ReadFull interface call (one heap allocation
		// per stream), and the host field cannot be in the buffer yet.
		hb := d.hostBuf[:4]
		if _, err := io.ReadFull(d.r, hb); err != nil {
			if errors.Is(err, io.EOF) {
				return Report{}, io.EOF
			}
			return Report{}, fmt.Errorf("ingest: reading wire header: %w", err)
		}
		switch [4]byte(hb) {
		case wireMagic:
		case wireMagicV1:
			d.v1 = true
		default:
			return Report{}, fmt.Errorf("ingest: bad wire magic %q (want %q or %q)", hb, wireMagic[:], wireMagicV1[:])
		}
		d.readHeader = true
	}

	var trace uint64
	if !d.v1 {
		var err error
		trace, err = binary.ReadUvarint(d.r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return Report{}, io.EOF // clean end on frame boundary
			}
			return Report{}, fmt.Errorf("ingest: reading trace id: %w", err)
		}
	}

	hostLen, err := binary.ReadUvarint(d.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			if !d.v1 {
				// The trace field was read, so the frame has started.
				return Report{}, fmt.Errorf("ingest: reading host length: %w", io.ErrUnexpectedEOF)
			}
			return Report{}, io.EOF // clean end on frame boundary
		}
		return Report{}, fmt.Errorf("ingest: reading host length: %w", err)
	}
	if hostLen == 0 || hostLen > MaxWireHostLen {
		return Report{}, fmt.Errorf("ingest: host length %d outside [1,%d]", hostLen, MaxWireHostLen)
	}
	hostBytes := d.hostBuf[:hostLen]
	if _, err := io.ReadFull(d.r, hostBytes); err != nil {
		return Report{}, fmt.Errorf("ingest: reading host: %w", noEOF(err))
	}
	var host string
	if d.arena != nil {
		host = d.arena.internHost(hostBytes)
	} else {
		host = string(hostBytes)
	}

	certCount, err := binary.ReadUvarint(d.r)
	if err != nil {
		return Report{}, fmt.Errorf("ingest: reading cert count: %w", noEOF(err))
	}
	if certCount == 0 || certCount > MaxWireChainCerts {
		return Report{}, fmt.Errorf("ingest: chain of %d certs outside [1,%d]", certCount, MaxWireChainCerts)
	}
	var chain [][]byte
	if d.arena != nil {
		chain = d.arena.headers(int(certCount))
	} else {
		chain = make([][]byte, certCount)
	}
	for i := range chain {
		certLen, err := binary.ReadUvarint(d.r)
		if err != nil {
			return Report{}, fmt.Errorf("ingest: reading cert length: %w", noEOF(err))
		}
		if certLen == 0 || certLen > MaxWireCertLen {
			return Report{}, fmt.Errorf("ingest: certificate of %d bytes outside [1,%d]", certLen, MaxWireCertLen)
		}
		var der []byte
		if d.arena != nil {
			der = d.arena.alloc(int(certLen))
		} else {
			der = make([]byte, certLen)
		}
		if _, err := io.ReadFull(d.r, der); err != nil {
			return Report{}, fmt.Errorf("ingest: reading certificate: %w", noEOF(err))
		}
		chain[i] = der
	}
	return Report{Host: host, ChainDER: chain, Trace: trace}, nil
}

// noEOF maps io.EOF to io.ErrUnexpectedEOF: inside a frame, running out
// of bytes is truncation, never a clean end.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
