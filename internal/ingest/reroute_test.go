package ingest

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tlsfof/internal/classify"
	"tlsfof/internal/core"
)

// Satellite regression: a not-owner verdict is a decoded verdict, but it
// must NOT be final — the batch provably was not applied, so the client
// retargets it at the named owner instead of dropping it. Before the
// fix, the draining-node verdict looked like a clean 200 with zero
// accepts and the batch silently vanished.

// notOwnerHandler refuses every batch, naming owner.
func notOwnerHandler(ownerID, ownerURL string, posts *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if posts != nil {
			posts.Add(1)
		}
		json.NewEncoder(w).Encode(BatchResult{NotOwner: true, Owner: ownerID, OwnerURL: ownerURL})
	}
}

func TestClientRetargetsNotOwner(t *testing.T) {
	var ownerPosts atomic.Int64
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ownerPosts.Add(1)
		if r.URL.Path != "/ingest/batch" {
			t.Errorf("retargeted post hit %q, want the original endpoint path", r.URL.Path)
		}
		json.NewEncoder(w).Encode(BatchResult{Accepted: 1})
	}))
	defer owner.Close()
	var drainPosts atomic.Int64
	draining := httptest.NewServer(notOwnerHandler("b", owner.URL, &drainPosts))
	defer draining.Close()

	c := NewClient(draining.URL + "/ingest/batch")
	c.RetryDelay = time.Millisecond
	c.Report(retryReport)
	if err := c.Flush(); err != nil {
		t.Fatalf("flush through a draining node: %v", err)
	}
	st := c.Stats()
	if drainPosts.Load() != 1 || ownerPosts.Load() != 1 {
		t.Fatalf("posts: draining %d, owner %d; want 1 and 1", drainPosts.Load(), ownerPosts.Load())
	}
	if st.NotOwnerRetries != 1 || st.Accepted != 1 || st.PostErrors != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want 1 not-owner retry, 1 accepted, no errors", st)
	}
}

func TestClientNotOwnerWithoutTargetIsFinal(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(notOwnerHandler("b", "", &posts))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retries = 3
	c.RetryDelay = time.Millisecond
	c.Report(retryReport)
	err := c.Flush()
	if err == nil || !strings.Contains(err.Error(), "not owner") {
		t.Fatalf("flush error = %v, want a final not-owner error", err)
	}
	st := c.Stats()
	if posts.Load() != 1 || st.Retries != 0 || st.PostErrors != 1 {
		t.Fatalf("unresolvable verdict was retried: %d posts, stats %+v", posts.Load(), st)
	}
}

func TestClientNotOwnerPingPongBounded(t *testing.T) {
	// Two confused nodes pointing at each other must not trap the
	// client: the hop budget ends the upload with an error.
	var aPosts, bPosts atomic.Int64
	var aURL, bURL string
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aPosts.Add(1)
		json.NewEncoder(w).Encode(BatchResult{NotOwner: true, Owner: "b", OwnerURL: bURL})
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bPosts.Add(1)
		json.NewEncoder(w).Encode(BatchResult{NotOwner: true, Owner: "a", OwnerURL: aURL})
	}))
	defer b.Close()
	aURL, bURL = a.URL, b.URL

	c := NewClient(a.URL + "/ingest/batch")
	c.RetryDelay = time.Millisecond
	c.Report(retryReport)
	err := c.Flush()
	if err == nil || !strings.Contains(err.Error(), "unowned") {
		t.Fatalf("flush error = %v, want hop-budget exhaustion", err)
	}
	total := aPosts.Load() + bPosts.Load()
	if total != int64(maxOwnerHops)+1 {
		t.Fatalf("%d posts across the ping-pong pair, want hop budget %d + 1", total, maxOwnerHops)
	}
	if st := c.Stats(); st.NotOwnerRetries != uint64(maxOwnerHops) || st.PostErrors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientResolveOwnerHook(t *testing.T) {
	var ownerPosts atomic.Int64
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ownerPosts.Add(1)
		json.NewEncoder(w).Encode(BatchResult{Accepted: 1})
	}))
	defer owner.Close()
	// The verdict names only an opaque node ID; the hook supplies the
	// URL (the fleetctl pattern: IDs resolve through its member table).
	draining := httptest.NewServer(notOwnerHandler("node-7", "", nil))
	defer draining.Close()

	c := NewClient(draining.URL)
	c.RetryDelay = time.Millisecond
	c.ResolveOwner = func(res BatchResult) string {
		if res.Owner == "node-7" {
			return owner.URL
		}
		return ""
	}
	c.Report(retryReport)
	if err := c.Flush(); err != nil {
		t.Fatalf("flush with ResolveOwner hook: %v", err)
	}
	if ownerPosts.Load() != 1 {
		t.Fatalf("owner saw %d posts, want 1", ownerPosts.Load())
	}
}

// TestRoutedBatchHandlerAllOrNothing: the cluster-mode handler refuses a
// batch containing any foreign host without ingesting ANY of it — the
// property that makes retargeted re-sends duplicate-free.
func TestRoutedBatchHandlerAllOrNothing(t *testing.T) {
	var ingested atomic.Int64
	sink := core.SinkFunc(func(m core.Measurement) { ingested.Add(1) })
	col := core.NewCollector(classify.NewClassifier(), nil, sink)
	col.Campaign = "route-test"
	chain := testChain(t, "owned.test")
	col.SetAuthoritative("owned.test", chain)
	route := Router{
		Owns:  func(host string) bool { return host != "foreign.test" },
		Owner: func(host string) (string, string) { return "b", "http://other.test" },
	}
	srv := httptest.NewServer(RoutedBatchHandler(col, route))
	defer srv.Close()

	post := func(reports []Report) BatchResult {
		t.Helper()
		body, err := AppendReports(nil, reports)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL, "application/octet-stream", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res BatchResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	mixed := []Report{
		{Host: "owned.test", ChainDER: chain},
		{Host: "foreign.test", ChainDER: chain},
	}
	res := post(mixed)
	if !res.NotOwner || res.Owner != "b" || res.OwnerURL != "http://other.test" {
		t.Fatalf("mixed batch verdict = %+v, want not-owner naming b", res)
	}
	if res.Accepted != 0 || ingested.Load() != 0 {
		t.Fatalf("refused batch ingested %d/%d reports; all-or-nothing violated", res.Accepted, ingested.Load())
	}

	res = post(mixed[:1])
	if res.NotOwner || res.Accepted != 1 || ingested.Load() != 1 {
		t.Fatalf("owned batch verdict = %+v (sink saw %d), want 1 accepted", res, ingested.Load())
	}
}
