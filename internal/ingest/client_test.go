package ingest

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"tlsfof/internal/classify"
	"tlsfof/internal/core"
)

// TestClientBatchesAndAccounts drives the uploader against the real batch
// endpoint: reports batch at BatchSize, a trailing Flush ships the
// remainder, and the server's accept/reject verdicts land in the stats.
func TestClientBatchesAndAccounts(t *testing.T) {
	chain := testChain(t, "client.example")
	p := NewPipeline(Config{Shards: 2, Block: true})
	defer p.Close()
	col := core.NewCollector(classify.NewClassifier(), nil, p)
	col.SetAuthoritative("client.example", chain)
	srv := httptest.NewServer(BatchHandler(col))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.BatchSize = 10

	const workers, perWorker = 4, 13 // 52 reports: 5 full batches + 2 on Flush
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				host := "client.example"
				if i == 0 {
					host = "unknown.example" // rejected server-side
				}
				if err := c.Report(Report{Host: host, ChainDER: chain}); err != nil {
					t.Errorf("report: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Reported != workers*perWorker {
		t.Fatalf("reported = %d, want %d", st.Reported, workers*perWorker)
	}
	if st.Accepted+st.Rejected != st.Reported {
		t.Fatalf("accounting leak: %d accepted + %d rejected != %d reported",
			st.Accepted, st.Rejected, st.Reported)
	}
	if st.Rejected != workers {
		t.Fatalf("rejected = %d, want %d (one unknown host per worker)", st.Rejected, workers)
	}
	if st.PostErrors != 0 {
		t.Fatalf("post errors = %d", st.PostErrors)
	}
	if st.Posts < st.Reported/uint64(c.BatchSize) {
		t.Fatalf("posts = %d, too few for %d reports at batch %d", st.Posts, st.Reported, c.BatchSize)
	}
	p.Drain()
	if got := p.Merge(0).Totals().Tested; got != int(st.Accepted) {
		t.Fatalf("store tested = %d, want %d", got, st.Accepted)
	}
}

// TestClientCountsBadEndpoint: a wrong URL (404 text, not a BatchResult)
// must surface in PostErrors, not report silent success — run.sh and the
// fleet exit code key off this stat.
func TestClientCountsBadEndpoint(t *testing.T) {
	chain := testChain(t, "client.example")
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	c := NewClient(srv.URL + "/ingest/batch")
	if err := c.Report(Report{Host: "client.example", ChainDER: chain}); err != nil {
		t.Fatalf("report buffered, should not error yet: %v", err)
	}
	if err := c.Flush(); err == nil {
		t.Fatal("flush against a 404 endpoint reported success")
	}
	st := c.Stats()
	if st.PostErrors != 1 || st.Accepted != 0 {
		t.Fatalf("stats = %+v, want 1 post error and 0 accepted", st)
	}
}

// TestClientFlushEmpty: flushing an empty buffer is a no-op, not a POST.
func TestClientFlushEmpty(t *testing.T) {
	c := NewClient("http://127.0.0.1:1/ingest/batch") // nothing listens here
	if err := c.Flush(); err != nil {
		t.Fatalf("empty flush tried the network: %v", err)
	}
	if st := c.Stats(); st.Posts != 0 {
		t.Fatalf("posts = %d, want 0", st.Posts)
	}
}
