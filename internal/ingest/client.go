package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"tlsfof/internal/resilient"
)

// DefaultClientBatch is the report count at which Client flushes
// automatically. At the wire format's ~1-4 KiB per report this keeps POST
// bodies well under reportd's request bound while amortizing the HTTP
// round trip across hundreds of probes.
const DefaultClientBatch = 256

// ClientStats is the uploader's accounting: what left the client and what
// the server said about it.
type ClientStats struct {
	// Reported counts reports handed to Report.
	Reported uint64 `json:"reported"`
	// Posts counts attempted HTTP round trips; PostErrors counts posts
	// that did not fully succeed (transport failure, undecodable
	// response, non-200 status, or a server-reported stream error) after
	// retries were exhausted. Retries counts re-sent batches: a flush
	// that failed partway (transport error, truncated response, 5xx) and
	// was attempted again.
	Posts      uint64 `json:"posts"`
	PostErrors uint64 `json:"post_errors"`
	Retries    uint64 `json:"retries"`
	// Accepted and Rejected sum the server's per-batch BatchResult.
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	// NotOwnerRetries counts batches re-sent to a different node after a
	// not-owner verdict (cluster mode: the target was draining or the
	// ring moved underneath the upload).
	NotOwnerRetries uint64 `json:"not_owner_retries"`
}

// Client batches reports and streams them to a reportd /ingest/batch
// endpoint in the binary wire format — the upload half of the live-wire
// loop (probe fleet → proxy → ingest). Safe for concurrent use by many
// probe workers; batching serializes on one mutex, the HTTP round trip
// runs outside it.
type Client struct {
	// URL is the full endpoint, e.g. "http://127.0.0.1:8080/ingest/batch".
	URL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
	// BatchSize triggers an automatic flush (DefaultClientBatch when <= 0).
	BatchSize int
	// Retries is how many times a failed flush is re-sent before the
	// batch is declared lost. Only transport-level damage is retried —
	// a connection error, a response that did not decode, or a 5xx —
	// never a decoded server verdict (4xx rejections are final). Hostile
	// networks routinely kill an upload mid-flush; the measurement must
	// not shed a whole batch for one reset. The server side deduplicates
	// nothing, so a retry of a partially-ingested stream can double-count
	// reports; the study's aggregate tables tolerate that (§4's campaign
	// counts are lower bounds).
	Retries int
	// RetryDelay is the backoff base before the first retry (50ms when
	// 0). Subsequent retries back off exponentially with jitter, capped
	// at RetryCap.
	RetryDelay time.Duration
	// RetryCap bounds one backoff sleep (64×RetryDelay when 0).
	RetryCap time.Duration
	// Seed drives the retry jitter; a seeded client replays an identical
	// backoff schedule. 0 derives a seed from the clock.
	Seed uint64
	// Stop, when closed, aborts in-flight retry sleeps — a shutting-down
	// probe fleet must not hang on a dead collector's backoff.
	Stop <-chan struct{}
	// ResolveOwner maps a not-owner verdict to the URL the batch should
	// be re-sent to, or "" when no retarget is possible (the verdict then
	// becomes a final error). When nil, the default resolution joins the
	// verdict's OwnerURL with the path of c.URL — node base URLs on one
	// side, a shared endpoint path on the other.
	ResolveOwner func(res BatchResult) string

	mu    sync.Mutex
	buf   []Report
	stats ClientStats

	// batchPool recycles flushed batch slices and encodePool the wire
	// encode buffers, so a steady upload stream re-makes neither: enqueue
	// appends into recycled capacity and each flush encodes into a warm
	// buffer. Pools (not single fields) because posts from concurrent
	// reporters overlap.
	batchPool  sync.Pool
	encodePool sync.Pool
}

// NewClient builds a client for the given /ingest/batch URL.
func NewClient(url string) *Client {
	return &Client{URL: url, BatchSize: DefaultClientBatch}
}

func (c *Client) batchSize() int {
	if c.BatchSize <= 0 {
		return DefaultClientBatch
	}
	return c.BatchSize
}

// Report enqueues one report, flushing the batch when full. The returned
// error is the flush outcome; enqueueing itself cannot fail.
func (c *Client) Report(r Report) error {
	c.mu.Lock()
	c.stats.Reported++
	c.buf = append(c.buf, r)
	if len(c.buf) < c.batchSize() {
		c.mu.Unlock()
		return nil
	}
	batch := c.buf
	c.buf = c.takeBatchSlice()
	c.mu.Unlock()
	return c.post(batch)
}

// takeBatchSlice returns an empty batch slice, recycled from a completed
// post when one is available. Caller holds c.mu (only for the stats
// consistency of the surrounding code; the pool itself is concurrency
// safe).
func (c *Client) takeBatchSlice() []Report {
	if bp, ok := c.batchPool.Get().(*[]Report); ok {
		return (*bp)[:0]
	}
	return make([]Report, 0, c.batchSize())
}

// recycleBatch returns a posted batch slice to the pool. Entries are
// cleared first so recycled capacity does not pin report chains in
// memory.
func (c *Client) recycleBatch(batch []Report) {
	clear(batch)
	batch = batch[:0]
	c.batchPool.Put(&batch)
}

// Flush uploads any buffered reports.
func (c *Client) Flush() error {
	c.mu.Lock()
	if len(c.buf) == 0 {
		c.mu.Unlock()
		return nil
	}
	batch := c.buf
	c.buf = c.takeBatchSlice()
	c.mu.Unlock()
	return c.post(batch)
}

// post encodes and uploads one batch. The batch slice is recycled
// immediately after encoding; the encode buffer is recycled unless a
// transport error may still be referencing it.
func (c *Client) post(batch []Report) error {
	var scratch []byte
	if bp, ok := c.encodePool.Get().(*[]byte); ok {
		scratch = (*bp)[:0]
	}
	body, err := AppendReports(scratch, batch)
	c.recycleBatch(batch)
	if err != nil {
		c.encodePool.Put(&scratch)
		return fmt.Errorf("ingest: encode batch: %w", err)
	}
	err, anyTransport := c.deliver(body)
	if anyTransport {
		// A transport-failed attempt's HTTP machinery may still briefly
		// reference body even after a later attempt succeeds, so the
		// encode buffer is dropped, not recycled — the next post
		// re-grows one.
		return err
	}
	body = body[:0]
	c.encodePool.Put(&body)
	return err
}

// PostReports uploads one caller-owned batch immediately, bypassing the
// client's buffering and buffer pools: the slice is read, never kept or
// recycled, so callers that manage their own batches (fleet
// orchestrators re-driving a rerouted upload) can reuse it freely.
func (c *Client) PostReports(batch []Report) error {
	if len(batch) == 0 {
		return nil
	}
	body, err := AppendReports(nil, batch)
	if err != nil {
		return fmt.Errorf("ingest: encode batch: %w", err)
	}
	err, _ = c.deliver(body)
	return err
}

// maxOwnerHops bounds how many not-owner retargets one batch follows
// before the upload is declared failed — two confused nodes pointing at
// each other must not trap the client.
const maxOwnerHops = 4

// deliver runs the retry loop for one encoded batch: transport-level
// failures are retried up to c.Retries times against the same target,
// and a decoded not-owner verdict retargets the upload at the named
// owner (its own bounded budget — ownership moves are progress, not
// failures). anyTransport reports whether any attempt ended in a
// transport error, i.e. whether body may still be referenced.
func (c *Client) deliver(body []byte) (err error, anyTransport bool) {
	seed := c.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	bo := resilient.NewBackoff(c.RetryDelay, c.RetryCap, seed)
	target := c.URL
	var retryable, transport bool
	var next string
	hops := 0
	for attempt := 0; ; attempt++ {
		err, retryable, transport, next = c.postOnce(target, body)
		anyTransport = anyTransport || transport
		if next != "" && next != target {
			if hops >= maxOwnerHops {
				err = fmt.Errorf("ingest: batch still unowned after %d retargets: %w", hops, err)
				break
			}
			hops++
			target = next
			c.mu.Lock()
			c.stats.NotOwnerRetries++
			c.mu.Unlock()
			// Retargeting is progress toward the true owner, not a
			// failure of this target — it spends the hop budget, not the
			// retry budget, and needs no backoff.
			attempt--
			continue
		}
		if err == nil || !retryable || attempt >= c.Retries {
			break
		}
		c.mu.Lock()
		c.stats.Retries++
		c.mu.Unlock()
		if serr := resilient.Sleep(context.Background(), c.Stop, bo.Next()); serr != nil {
			// Shutdown mid-backoff: surface the delivery error, not the
			// sleep's — the batch is still undelivered.
			break
		}
	}
	if err != nil {
		c.mu.Lock()
		c.stats.PostErrors++
		c.mu.Unlock()
	}
	return err, anyTransport
}

// postOnce performs one upload round trip against target. retryable
// reports whether a failure is worth re-sending: a connection error, a
// response damaged in flight (undecodable on a 200 or 5xx), or a 5xx —
// never a deterministic endpoint mismatch (a 404's HTML page fails
// identically every time). A decoded not-owner verdict is the one
// decoded verdict that is NOT final: the batch was provably not applied,
// so it returns the owner's URL in next for the caller to retarget.
// transport is true only when the HTTP client returned an error, i.e.
// only then may it still reference body. Server Accepted/Rejected counts
// fold into the stats only on outcomes that end the attempt loop, so a
// retried batch is never double-counted.
func (c *Client) postOnce(target string, body []byte) (err error, retryable, transport bool, next string) {
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Post(target, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("ingest: post batch: %w", err), true, true, ""
	}
	defer resp.Body.Close()
	// The endpoint answers a BatchResult on 200/400/413; anything that
	// does not decode (a 404 from a wrong URL, a proxy error page, a
	// response a hostile wire truncated) is a failed post.
	var res BatchResult
	decodeErr := json.NewDecoder(resp.Body).Decode(&res)
	c.mu.Lock()
	c.stats.Posts++
	c.mu.Unlock()
	if decodeErr != nil {
		retryable = resp.StatusCode == http.StatusOK || resp.StatusCode >= http.StatusInternalServerError
		return fmt.Errorf("ingest: batch response (HTTP %d): %w", resp.StatusCode, decodeErr), retryable, false, ""
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		// The attempt will be re-sent; folding this response's counts
		// would tally the same batch once per retry.
		return fmt.Errorf("ingest: batch post: HTTP %d", resp.StatusCode), true, false, ""
	}
	if res.NotOwner {
		// The node refused the whole batch because ownership moved (a
		// draining node, a rebalanced ring). Nothing was applied, so a
		// re-send cannot double-count; hand the owner's endpoint back
		// for the deliver loop to retarget.
		next = c.resolveOwner(res)
		if next == "" {
			return fmt.Errorf("ingest: node is not owner of batch (owner %q) and no retarget is available", res.Owner), false, false, ""
		}
		return fmt.Errorf("ingest: node is not owner of batch, owner is %s", next), false, false, next
	}
	c.mu.Lock()
	c.stats.Accepted += uint64(res.Accepted)
	c.stats.Rejected += uint64(res.Rejected)
	c.mu.Unlock()
	switch {
	case res.Error != "":
		// Stream-level damage the server itself reported: it stopped
		// decoding mid-batch. A decoded verdict is final, not retried —
		// re-sending would double-ingest the accepted prefix for sure.
		return fmt.Errorf("ingest: server rejected stream after %d reports: %s", res.Accepted, res.Error), false, false, ""
	case resp.StatusCode != http.StatusOK:
		return fmt.Errorf("ingest: batch post: HTTP %d", resp.StatusCode), false, false, ""
	}
	return nil, false, false, ""
}

// resolveOwner turns a not-owner verdict into the retarget URL: the
// ResolveOwner hook when set, else the verdict's OwnerURL joined with
// the path of c.URL (node base URL + shared endpoint path).
func (c *Client) resolveOwner(res BatchResult) string {
	if c.ResolveOwner != nil {
		return c.ResolveOwner(res)
	}
	if res.OwnerURL == "" {
		return ""
	}
	u, err := url.Parse(c.URL)
	if err != nil {
		return ""
	}
	return strings.TrimSuffix(res.OwnerURL, "/") + u.Path
}

// Stats snapshots the uploader accounting.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
