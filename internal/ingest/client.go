package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// DefaultClientBatch is the report count at which Client flushes
// automatically. At the wire format's ~1-4 KiB per report this keeps POST
// bodies well under reportd's request bound while amortizing the HTTP
// round trip across hundreds of probes.
const DefaultClientBatch = 256

// ClientStats is the uploader's accounting: what left the client and what
// the server said about it.
type ClientStats struct {
	// Reported counts reports handed to Report.
	Reported uint64 `json:"reported"`
	// Posts counts attempted HTTP round trips; PostErrors counts posts
	// that did not fully succeed (transport failure, undecodable
	// response, non-200 status, or a server-reported stream error).
	Posts      uint64 `json:"posts"`
	PostErrors uint64 `json:"post_errors"`
	// Accepted and Rejected sum the server's per-batch BatchResult.
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
}

// Client batches reports and streams them to a reportd /ingest/batch
// endpoint in the binary wire format — the upload half of the live-wire
// loop (probe fleet → proxy → ingest). Safe for concurrent use by many
// probe workers; batching serializes on one mutex, the HTTP round trip
// runs outside it.
type Client struct {
	// URL is the full endpoint, e.g. "http://127.0.0.1:8080/ingest/batch".
	URL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
	// BatchSize triggers an automatic flush (DefaultClientBatch when <= 0).
	BatchSize int

	mu    sync.Mutex
	buf   []Report
	stats ClientStats

	// batchPool recycles flushed batch slices and encodePool the wire
	// encode buffers, so a steady upload stream re-makes neither: enqueue
	// appends into recycled capacity and each flush encodes into a warm
	// buffer. Pools (not single fields) because posts from concurrent
	// reporters overlap.
	batchPool  sync.Pool
	encodePool sync.Pool
}

// NewClient builds a client for the given /ingest/batch URL.
func NewClient(url string) *Client {
	return &Client{URL: url, BatchSize: DefaultClientBatch}
}

func (c *Client) batchSize() int {
	if c.BatchSize <= 0 {
		return DefaultClientBatch
	}
	return c.BatchSize
}

// Report enqueues one report, flushing the batch when full. The returned
// error is the flush outcome; enqueueing itself cannot fail.
func (c *Client) Report(r Report) error {
	c.mu.Lock()
	c.stats.Reported++
	c.buf = append(c.buf, r)
	if len(c.buf) < c.batchSize() {
		c.mu.Unlock()
		return nil
	}
	batch := c.buf
	c.buf = c.takeBatchSlice()
	c.mu.Unlock()
	return c.post(batch)
}

// takeBatchSlice returns an empty batch slice, recycled from a completed
// post when one is available. Caller holds c.mu (only for the stats
// consistency of the surrounding code; the pool itself is concurrency
// safe).
func (c *Client) takeBatchSlice() []Report {
	if bp, ok := c.batchPool.Get().(*[]Report); ok {
		return (*bp)[:0]
	}
	return make([]Report, 0, c.batchSize())
}

// recycleBatch returns a posted batch slice to the pool. Entries are
// cleared first so recycled capacity does not pin report chains in
// memory.
func (c *Client) recycleBatch(batch []Report) {
	clear(batch)
	batch = batch[:0]
	c.batchPool.Put(&batch)
}

// Flush uploads any buffered reports.
func (c *Client) Flush() error {
	c.mu.Lock()
	if len(c.buf) == 0 {
		c.mu.Unlock()
		return nil
	}
	batch := c.buf
	c.buf = c.takeBatchSlice()
	c.mu.Unlock()
	return c.post(batch)
}

// post encodes and uploads one batch, folding the server's BatchResult
// into the stats. The batch slice and encode buffer are recycled on every
// exit path.
func (c *Client) post(batch []Report) error {
	var scratch []byte
	if bp, ok := c.encodePool.Get().(*[]byte); ok {
		scratch = (*bp)[:0]
	}
	body, err := AppendReports(scratch, batch)
	c.recycleBatch(batch)
	if err != nil {
		c.encodePool.Put(&scratch)
		return fmt.Errorf("ingest: encode batch: %w", err)
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Post(c.URL, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		// The transport may briefly reference the request body after an
		// error return, so the encode buffer is dropped, not recycled —
		// the next post re-grows one.
		c.mu.Lock()
		c.stats.PostErrors++
		c.mu.Unlock()
		return fmt.Errorf("ingest: post batch: %w", err)
	}
	// net/http sanctions request reuse once the response body is closed;
	// defers run LIFO, so the buffer is recycled strictly after Close.
	defer func() {
		body = body[:0]
		c.encodePool.Put(&body)
	}()
	defer resp.Body.Close()
	// The endpoint answers a BatchResult on 200/400/413; anything that
	// does not decode (a 404 from a wrong URL, a proxy error page) is a
	// failed post — it must land in PostErrors so operators and exit
	// codes see it, not just stderr.
	var res BatchResult
	decodeErr := json.NewDecoder(resp.Body).Decode(&res)
	c.mu.Lock()
	c.stats.Posts++
	if decodeErr != nil {
		c.stats.PostErrors++
		c.mu.Unlock()
		return fmt.Errorf("ingest: batch response (HTTP %d): %w", resp.StatusCode, decodeErr)
	}
	c.stats.Accepted += uint64(res.Accepted)
	c.stats.Rejected += uint64(res.Rejected)
	switch {
	case res.Error != "":
		// Stream-level damage: the server stopped decoding mid-batch.
		c.stats.PostErrors++
		c.mu.Unlock()
		return fmt.Errorf("ingest: server rejected stream after %d reports: %s", res.Accepted, res.Error)
	case resp.StatusCode != http.StatusOK:
		c.stats.PostErrors++
		c.mu.Unlock()
		return fmt.Errorf("ingest: batch post: HTTP %d", resp.StatusCode)
	}
	c.mu.Unlock()
	return nil
}

// Stats snapshots the uploader accounting.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
