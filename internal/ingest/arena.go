package ingest

import (
	"tlsfof/internal/core"
)

// Arena is the batch-scoped allocator behind decode-in-place wire
// decoding (NewArenaDecoder). Certificate DER bytes and chain headers
// land in large recycled blocks instead of one heap object per cert,
// and host names intern to shared strings; the per-report cost on a
// warm arena is zero heap allocations.
//
// Ownership contract: every slice an arena-backed Report carries aliases
// arena memory and is valid only until Reset. A handler therefore
// ingests the whole batch (the collector copies what it keeps — see the
// chaincache clone-on-insert rule) before calling Reset and returning
// the arena to its pool. Nothing downstream of core.Collector.Ingest*
// may retain the DER slices.
type Arena struct {
	block []byte   // active byte block; off is the high-water mark
	off   int
	spill [][]byte // exhausted blocks, pinned until Reset

	hdr      [][]byte   // active chain-header slab
	hdrOff   int
	hdrSpill [][][]byte

	hosts *core.Interner
}

const (
	arenaBlockMin = 64 << 10
	arenaBlockMax = 1 << 20
	arenaHdrMin   = 256
)

// NewArena returns an empty arena; blocks are allocated on first use and
// survive Reset, so a pooled arena reaches steady state after one batch.
func NewArena() *Arena {
	return &Arena{hosts: core.NewInterner(0)}
}

// alloc carves n bytes out of the active block, growing geometrically
// (retired blocks stay pinned until Reset so handed-out slices remain
// valid).
func (a *Arena) alloc(n int) []byte {
	if len(a.block)-a.off < n {
		size := arenaBlockMin
		if len(a.block) > 0 {
			size = 2 * len(a.block)
			if size > arenaBlockMax {
				size = arenaBlockMax
			}
		}
		if size < n {
			size = n
		}
		if a.block != nil {
			a.spill = append(a.spill, a.block)
		}
		a.block = make([]byte, size)
		a.off = 0
	}
	b := a.block[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

// headers carves an n-entry chain header ([][]byte) out of the header
// slab, same lifetime rules as alloc.
func (a *Arena) headers(n int) [][]byte {
	if len(a.hdr)-a.hdrOff < n {
		size := arenaHdrMin
		if s := 2 * len(a.hdr); s > size {
			size = s
		}
		if size < n {
			size = n
		}
		if a.hdr != nil {
			a.hdrSpill = append(a.hdrSpill, a.hdr)
		}
		a.hdr = make([][]byte, size)
		a.hdrOff = 0
	}
	s := a.hdr[a.hdrOff : a.hdrOff+n : a.hdrOff+n]
	a.hdrOff += n
	return s
}

// internHost returns a stable string for a host name. Interned strings
// are plain copies, not arena references — they survive Reset, which is
// what lets Measurement.Host flow into long-lived aggregates.
func (a *Arena) internHost(b []byte) string {
	return a.hosts.InternBytes(b)
}

// Reset retires every outstanding slice and rewinds the arena for the
// next batch. The largest byte block and header slab are kept (capacity
// is the point of pooling); header entries are cleared so retired DER
// blocks can be collected. The host intern table survives — hosts
// repeat across batches and the interned strings own their bytes.
func (a *Arena) Reset() {
	a.off = 0
	a.spill = nil
	clear(a.hdr)
	a.hdrOff = 0
	a.hdrSpill = nil
}

// poison overwrites every byte the arena has handed out. Test hook: if
// anything downstream retained an arena slice, its content visibly rots
// and golden-table comparisons catch it.
func (a *Arena) poison(pat byte) {
	for i := range a.block {
		a.block[i] = pat
	}
	for _, b := range a.spill {
		for i := range b {
			b[i] = pat
		}
	}
}
