package ingest

import (
	"fmt"
	"os"
	"testing"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/telemetry"
)

// TestMetricsOverheadSmoke pins the cost of mounting the telemetry plane
// on the ingest hot path: the same batched workload runs through an
// uninstrumented pipeline and one with a Tracer mounted (the reportd
// default — every measurement untraced, so the tracer adds clock reads
// and histogram observes per batch but no span work). Fails if the
// instrumented path is more than 5% slower, best-of-N on both sides to
// shave scheduler noise.
//
// Wall-clock comparisons are inherently jittery on shared CI runners, so
// the test only runs when METRICS_OVERHEAD_SMOKE is set (the CI workflow
// sets it in a dedicated step); locally: METRICS_OVERHEAD_SMOKE=1 go test
// -run TestMetricsOverheadSmoke ./internal/ingest/
func TestMetricsOverheadSmoke(t *testing.T) {
	if os.Getenv("METRICS_OVERHEAD_SMOKE") == "" {
		t.Skip("set METRICS_OVERHEAD_SMOKE=1 to run the timing comparison")
	}
	const (
		batchSize = 256
		batches   = 200
		rounds    = 5
	)
	batch := make([]core.Measurement, batchSize)
	for i := range batch {
		batch[i] = core.Measurement{
			Host: fmt.Sprintf("host-%d.example", i%8),
			Obs:  core.Observation{Proxied: i%16 == 0},
		}
	}

	run := func(tracer *telemetry.Tracer) time.Duration {
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			p := NewPipeline(Config{Shards: 2, Block: true, Tracer: tracer})
			start := time.Now()
			for b := 0; b < batches; b++ {
				p.IngestBatch(batch)
			}
			p.Drain()
			if d := time.Since(start); d < best {
				best = d
			}
			p.Close()
		}
		return best
	}

	// Interleave would be fairer still, but alternating pipelines keeps
	// the code simple and best-of-5 absorbs one-off stalls either way.
	bare := run(nil)
	reg := telemetry.NewRegistry()
	instrumented := run(telemetry.NewTracer(reg, 0))

	t.Logf("uninstrumented: %v, instrumented: %v (%+.2f%%)",
		bare, instrumented, 100*(float64(instrumented)/float64(bare)-1))
	if float64(instrumented) > float64(bare)*1.05 {
		t.Fatalf("telemetry overhead exceeds 5%%: bare %v vs instrumented %v", bare, instrumented)
	}
}
