package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/stats"
	"tlsfof/internal/store"
)

// synthetic builds n measurements over a handful of hosts, countries, and
// issuers, with roughly every 8th proxied — shaped like the study stream
// without touching any crypto.
func synthetic(n int, seed uint64) []core.Measurement {
	r := stats.NewRNG(seed)
	hosts := []string{"www.facebook.com", "tlsresearch.byu.edu", "mail.google.com", "example.org", "static.ak.fbcdn.net"}
	countries := []string{"US", "DE", "RO", "BR", "KR", "??"}
	issuers := []string{"Bitdefender", "Kurupira.NET", "Sendori, Inc", "Null", "DigiCert Inc"}
	epoch := time.Date(2014, time.October, 8, 0, 0, 0, 0, time.UTC)
	ms := make([]core.Measurement, n)
	for i := range ms {
		m := core.Measurement{
			Time:     epoch.Add(time.Duration(i) * time.Second),
			ClientIP: uint32(r.Intn(1 << 24)),
			Country:  countries[r.Intn(len(countries))],
			Host:     hosts[r.Intn(len(hosts))],
			Campaign: "synthetic",
		}
		if r.Intn(8) == 0 {
			m.Obs = core.Observation{
				Proxied:   true,
				IssuerOrg: issuers[r.Intn(len(issuers))],
				KeyBits:   []int{512, 1024, 2048, 2432}[r.Intn(4)],
				MD5Signed: r.Intn(4) == 0,
			}
			m.Obs.WeakKey = m.Obs.KeyBits < 2048
		}
		ms[i] = m
	}
	return ms
}

func TestBatcherBatchesAndFlushes(t *testing.T) {
	var got [][]core.Measurement
	sink := BatchSinkFunc(func(b []core.Measurement) { got = append(got, b) })
	b := NewBatcher(sink, 4)
	for _, m := range synthetic(10, 1) {
		b.Ingest(m)
	}
	if len(got) != 2 {
		t.Fatalf("before flush: %d batches, want 2", len(got))
	}
	b.Flush()
	if len(got) != 3 {
		t.Fatalf("after flush: %d batches, want 3", len(got))
	}
	total := 0
	for i, batch := range got {
		total += len(batch)
		if i < 2 && len(batch) != 4 {
			t.Fatalf("batch %d has %d measurements, want 4", i, len(batch))
		}
	}
	if total != 10 {
		t.Fatalf("total %d measurements, want 10", total)
	}
	b.Flush() // empty flush is a no-op
	if len(got) != 3 {
		t.Fatalf("empty flush forwarded a batch")
	}
}

func TestSinkAdapterPreservesOrder(t *testing.T) {
	var seen []uint32
	adapter := SinkAdapter{Sink: core.SinkFunc(func(m core.Measurement) { seen = append(seen, m.ClientIP) })}
	in := synthetic(32, 2)
	adapter.IngestBatch(in)
	if len(seen) != len(in) {
		t.Fatalf("delivered %d, want %d", len(seen), len(in))
	}
	for i, m := range in {
		if seen[i] != m.ClientIP {
			t.Fatalf("order broken at %d", i)
		}
	}
}

// TestPipelineMatchesSequential is the core pipeline property: any shard
// count and either ingest face produces a merged DB whose aggregates equal
// a plain sequential store.
func TestPipelineMatchesSequential(t *testing.T) {
	ms := synthetic(20000, 3)
	want := store.New(0)
	for _, m := range ms {
		want.Ingest(m)
	}

	for _, shards := range []int{1, 2, 4, 7} {
		for _, by := range []ShardBy{ByHost, ByClientIP} {
			p := NewPipeline(Config{Shards: shards, BatchSize: 64, Block: true, ShardBy: by})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					b := NewBatcher(p, 64)
					for i := w; i < len(ms); i += 4 {
						b.Ingest(ms[i])
					}
					b.Flush()
				}(w)
			}
			wg.Wait()
			p.Close()
			got := p.Merge(0)

			name := fmt.Sprintf("shards=%d by=%d", shards, by)
			if got.Totals() != want.Totals() {
				t.Fatalf("%s: totals %+v, want %+v", name, got.Totals(), want.Totals())
			}
			if got.DistinctProxiedIPs() != want.DistinctProxiedIPs() {
				t.Errorf("%s: distinct IPs %d, want %d", name, got.DistinctProxiedIPs(), want.DistinctProxiedIPs())
			}
			if got.Negligence() != want.Negligence() {
				t.Errorf("%s: negligence %+v, want %+v", name, got.Negligence(), want.Negligence())
			}
			gi, wi := got.IssuerOrgTop(0), want.IssuerOrgTop(0)
			if len(gi) != len(wi) {
				t.Fatalf("%s: issuer rows %d, want %d", name, len(gi), len(wi))
			}
			for i := range gi {
				if gi[i] != wi[i] {
					t.Errorf("%s: issuer row %d = %+v, want %+v", name, i, gi[i], wi[i])
				}
			}
			st := p.Stats()
			if st.Dropped != 0 {
				t.Errorf("%s: dropped %d under Block", name, st.Dropped)
			}
			if st.Ingested != uint64(len(ms)) {
				t.Errorf("%s: ingested %d, want %d", name, st.Ingested, len(ms))
			}
			if len(got.ProxiedRecords()) != len(want.ProxiedRecords()) {
				t.Errorf("%s: retained %d records, want %d", name, len(got.ProxiedRecords()), len(want.ProxiedRecords()))
			}
		}
	}
}

// TestPipelineMergeDeterministic: two runs with different interleavings
// produce byte-identical exports after Merge canonicalization.
func TestPipelineMergeDeterministic(t *testing.T) {
	ms := synthetic(8000, 4)
	render := func(producers int) string {
		p := NewPipeline(Config{Shards: 4, BatchSize: 32, Block: true})
		var wg sync.WaitGroup
		for w := 0; w < producers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(ms); i += producers {
					p.Ingest(ms[i])
				}
			}(w)
		}
		wg.Wait()
		p.Close()
		var buf bytes.Buffer
		if err := p.Merge(0).WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(1), render(5)
	if a != b {
		t.Fatalf("merged CSV differs between 1-producer and 5-producer runs")
	}
}

// blockingSink parks the shard worker until released, letting the test
// fill the bounded queue deterministically.
type blockingSink struct {
	started chan struct{} // closed once the worker is inside IngestBatch
	release chan struct{}
	once    sync.Once
	mu      sync.Mutex
	got     int
}

func (s *blockingSink) IngestBatch(b []core.Measurement) {
	s.once.Do(func() { close(s.started) })
	<-s.release
	s.mu.Lock()
	s.got += len(b)
	s.mu.Unlock()
}

// TestDropAccounting forces backpressure with a stalled consumer and a
// depth-1 queue: the first batch is in flight, the second queued, and
// everything after that must be counted dropped — not silently lost.
func TestDropAccounting(t *testing.T) {
	sink := &blockingSink{started: make(chan struct{}), release: make(chan struct{})}
	p := NewPipeline(Config{
		Shards:     1,
		BatchSize:  1,
		QueueDepth: 1,
		Block:      false,
		Sinks:      func(int) BatchSink { return sink },
	})
	ms := synthetic(10, 5)

	p.Ingest(ms[0]) // worker takes it and parks in the sink
	<-sink.started
	p.Ingest(ms[1]) // sits in the queue
	// The worker may need a moment to have taken batch 0 off the queue
	// before batch 1 can occupy it; retry until the queue accepts one.
	deadline := time.After(5 * time.Second)
	for p.Stats().Enqueued < 2 {
		select {
		case <-deadline:
			t.Fatal("queue never accepted the second measurement")
		default:
			time.Sleep(time.Millisecond)
			p.Ingest(ms[1])
		}
	}
	pre := p.Stats()
	for _, m := range ms[2:] {
		p.Ingest(m)
	}
	st := p.Stats()
	wantDropped := pre.Dropped + uint64(len(ms)-2)
	if st.Dropped != wantDropped {
		t.Fatalf("dropped %d, want %d", st.Dropped, wantDropped)
	}
	close(sink.release)
	p.Close()
	final := p.Stats()
	if final.Ingested != final.Enqueued {
		t.Fatalf("ingested %d != enqueued %d after Close", final.Ingested, final.Enqueued)
	}
	if got := sink.got; uint64(got) != final.Ingested {
		t.Fatalf("sink saw %d, accounting says %d", got, final.Ingested)
	}
}

// TestDrainMakesSnapshotsComplete: after Drain, a Merge must see every
// measurement ingested so far — the /stats snapshot path in reportd.
func TestDrainMakesSnapshotsComplete(t *testing.T) {
	p := NewPipeline(Config{Shards: 4, BatchSize: 512, Block: true})
	ms := synthetic(1000, 8)
	for _, m := range ms {
		p.Ingest(m) // BatchSize 512 > stripe size, so much stays pending
	}
	p.Drain()
	if got := p.Merge(0).Totals().Tested; got != len(ms) {
		t.Fatalf("after Drain merge sees %d, want %d", got, len(ms))
	}
	p.Close()
}

func TestWireRoundTrip(t *testing.T) {
	reports := []Report{
		{Host: "tlsresearch.byu.edu", ChainDER: [][]byte{{0x30, 0x82, 0x01}, {0x30, 0x82, 0x02, 0x99}}},
		{Host: "www.facebook.com", ChainDER: [][]byte{bytes.Repeat([]byte{0xAB}, 4096)}},
		{Host: "a", ChainDER: [][]byte{{1}}},
	}
	stream, err := EncodeReports(reports)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(bytes.NewReader(stream))
	for i, want := range reports {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if got.Host != want.Host {
			t.Fatalf("report %d host %q, want %q", i, got.Host, want.Host)
		}
		if len(got.ChainDER) != len(want.ChainDER) {
			t.Fatalf("report %d chain length %d, want %d", i, len(got.ChainDER), len(want.ChainDER))
		}
		for j := range want.ChainDER {
			if !bytes.Equal(got.ChainDER[j], want.ChainDER[j]) {
				t.Fatalf("report %d cert %d differs", i, j)
			}
		}
	}
	if _, err := dec.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestWireRejects(t *testing.T) {
	// Encoder-side limits.
	enc := NewEncoder(io.Discard)
	if err := enc.Encode(Report{Host: "", ChainDER: [][]byte{{1}}}); err == nil {
		t.Error("empty host accepted")
	}
	if err := enc.Encode(Report{Host: "h", ChainDER: nil}); err == nil {
		t.Error("empty chain accepted")
	}
	if err := enc.Encode(Report{Host: "h", ChainDER: [][]byte{bytes.Repeat([]byte{1}, MaxWireCertLen+1)}}); err == nil {
		t.Error("oversized certificate accepted")
	}

	// Decoder-side: bad magic.
	if _, err := NewDecoder(bytes.NewReader([]byte("NOPE...."))).Next(); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncation mid-frame is ErrUnexpectedEOF, not a clean EOF.
	stream, err := EncodeReports([]Report{{Host: "host", ChainDER: [][]byte{bytes.Repeat([]byte{7}, 100)}}})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(bytes.NewReader(stream[:len(stream)-5]))
	if _, err := dec.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated stream: got %v, want io.ErrUnexpectedEOF", err)
	}
	// A hostile length prefix must be rejected before allocation.
	hostile := append(append([]byte{}, wireMagic[:]...), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)
	if _, err := NewDecoder(bytes.NewReader(hostile)).Next(); err == nil {
		t.Error("hostile host length accepted")
	}
}
