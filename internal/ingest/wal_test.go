package ingest

import (
	"strings"
	"testing"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/durable"
	"tlsfof/internal/store"
)

func walTestMeasurements(n int) []core.Measurement {
	epoch := time.Date(2014, time.January, 6, 0, 0, 0, 0, time.UTC)
	hosts := []string{"a.example", "b.example", "c.example", "d.example"}
	ms := make([]core.Measurement, n)
	for i := range ms {
		ms[i] = core.Measurement{
			Time:     epoch.Add(time.Duration(i) * time.Second),
			ClientIP: uint32(i + 1),
			Country:  []string{"US", "BR", "DE"}[i%3],
			Host:     hosts[i%len(hosts)],
			Campaign: "wal-test",
		}
		if i%5 == 0 {
			ms[i].Obs = core.Observation{Proxied: true, IssuerOrg: "Fortinet", ProductName: "FortiGate", KeyBits: 1024, WeakKey: true}
		}
	}
	return ms
}

// recoverAll merges every shard WAL directory back into one store.
func recoverAll(t *testing.T, dir string, shards int) *store.DB {
	t.Helper()
	cfg := Config{WALDir: dir, Shards: shards}
	dbs := make([]*store.DB, shards)
	for i := 0; i < shards; i++ {
		db, _, err := durable.Recover(cfg.walOptions(i))
		if err != nil {
			t.Fatal(err)
		}
		dbs[i] = db
	}
	return store.Merge(0, dbs...)
}

func TestPipelineWALPersistsEveryDeliveredMeasurement(t *testing.T) {
	dir := t.TempDir()
	ms := walTestMeasurements(500)
	cfg := Config{Shards: 4, BatchSize: 32, Block: true, WALDir: dir}
	pl, infos, err := OpenPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("got %d recovery infos, want 4", len(infos))
	}
	for _, m := range ms {
		pl.Ingest(m)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	want := pl.Merge(0)
	if st := pl.Stats(); st.WALErrors != 0 {
		t.Fatalf("WAL errors: %d", st.WALErrors)
	}

	recovered := recoverAll(t, dir, 4)
	assertSameStore(t, recovered, want)
	direct := store.New(0)
	for _, m := range ms {
		direct.Ingest(m)
	}
	assertSameStore(t, recovered, direct)
}

func TestPipelineRecoversAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ms := walTestMeasurements(400)
	cfg := Config{Shards: 3, BatchSize: 16, Block: true, WALDir: dir}

	pl, _, err := OpenPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl.IngestBatch(ms[:200])
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new pipeline over the same directory must resume from
	// the recovered shard stores and keep appending.
	pl2, infos, err := OpenPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recovered int
	for _, info := range infos {
		recovered += info.Replayed
	}
	if recovered != 200 {
		t.Fatalf("second boot replayed %d frames, want 200", recovered)
	}
	pl2.IngestBatch(ms[200:])
	pl2.Drain()
	got := pl2.Merge(0)
	direct := store.New(0)
	for _, m := range ms {
		direct.Ingest(m)
	}
	assertSameStore(t, got, direct)
	if err := pl2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := pl2.Close(); err != nil {
		t.Fatal(err)
	}
	assertSameStore(t, recoverAll(t, dir, 3), direct)
}

func TestPipelineManifestPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 4, WALDir: dir}
	pl, _, err := OpenPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 8
	if _, _, err := OpenPipeline(cfg); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("shard-count change must be refused, got %v", err)
	}
}

func TestWALDirRejectsSinksOverride(t *testing.T) {
	_, _, err := OpenPipeline(Config{WALDir: t.TempDir(), Sinks: func(int) BatchSink {
		return BatchSinkFunc(func([]core.Measurement) {})
	}})
	if err == nil {
		t.Fatal("WALDir with Sinks override must be refused")
	}
}

// assertSameStore compares the aggregate surface two stores expose.
func assertSameStore(t *testing.T, got, want *store.DB) {
	t.Helper()
	if g, w := got.Totals(), want.Totals(); g != w {
		t.Fatalf("totals %+v != %+v", g, w)
	}
	if g, w := got.String(), want.String(); g != w {
		t.Fatalf("summary %q != %q", g, w)
	}
	if g, w := got.Negligence(), want.Negligence(); g != w {
		t.Fatalf("negligence %+v != %+v", g, w)
	}
	gp, wp := got.Products(), want.Products()
	if len(gp) != len(wp) {
		t.Fatalf("products %v != %v", gp, wp)
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("product %d: %+v != %+v", i, gp[i], wp[i])
		}
	}
}
