package ingest

// Allocation and recycling tests for the upload client: the flush path
// must recycle its batch slices instead of re-making one per flush
// (ISSUE 3 satellite), the steady-state enqueue must not allocate, and
// the append-style wire encoder must be zero-alloc into a warm buffer.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"unsafe"

	"tlsfof/internal/raceflag"
)

// cannedBatchServer answers every post with a fixed all-accepted
// BatchResult without decoding the body — the cheapest well-formed peer
// for client-side measurements.
func cannedBatchServer(t testing.TB) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"accepted":1,"rejected":0}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func testReport(host string) Report {
	return Report{Host: host, ChainDER: [][]byte{{1, 2, 3, 4}, {5, 6}}}
}

// TestClientRecyclesBatchSlices pins the recycling behavior: across many
// automatic flushes the client must settle on a fixed set of batch
// backing arrays (the in-fill slice plus the one being posted) instead of
// making a fresh slice per flush.
func TestClientRecyclesBatchSlices(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("sync.Pool intentionally drops entries under -race; recycling is not observable")
	}
	srv := cannedBatchServer(t)
	c := NewClient(srv.URL)
	c.BatchSize = 4

	backings := make(map[uintptr]int)
	const cycles = 8
	for i := 0; i < cycles; i++ {
		for j := 0; j < c.BatchSize; j++ {
			if err := c.Report(testReport("recycle.example")); err != nil {
				t.Fatal(err)
			}
		}
		// One flush just happened; record the backing array now in fill.
		c.mu.Lock()
		if cap(c.buf) < c.BatchSize {
			t.Fatalf("cycle %d: in-fill batch capacity %d < batch size %d", i, cap(c.buf), c.BatchSize)
		}
		backings[uintptr(unsafe.Pointer(unsafe.SliceData(c.buf[:1])))]++
		c.mu.Unlock()
	}
	// Posting is synchronous here, so steady state needs at most two
	// arrays; without recycling every cycle would mint a fresh one.
	if len(backings) > 2 {
		t.Fatalf("saw %d distinct batch backing arrays over %d flush cycles; recycling broken", len(backings), cycles)
	}
	st := c.Stats()
	if st.Reported != cycles*4 || st.Posts != cycles || st.PostErrors != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRecycledBatchesAreCleared pins the memory-retention contract:
// recycled slices must not keep references to posted report chains.
func TestRecycledBatchesAreCleared(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("sync.Pool intentionally drops entries under -race; recycling is not observable")
	}
	srv := cannedBatchServer(t)
	c := NewClient(srv.URL)
	c.BatchSize = 2
	for i := 0; i < 2; i++ {
		if err := c.Report(testReport("clear.example")); err != nil {
			t.Fatal(err)
		}
	}
	bp, ok := c.batchPool.Get().(*[]Report)
	if !ok {
		t.Fatal("no recycled batch in the pool after a flush")
	}
	full := (*bp)[:cap(*bp)]
	for i, r := range full {
		if r.Host != "" || r.ChainDER != nil {
			t.Fatalf("recycled slot %d still references a posted report: %+v", i, r)
		}
	}
}

// TestClientEnqueueSteadyStateAllocs pins the enqueue path at zero
// allocations once the batch slice has its working capacity.
func TestClientEnqueueSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	c := NewClient("http://unused.invalid/ingest/batch")
	c.BatchSize = 1 << 20 // never auto-flush during the measurement
	r := testReport("alloc.example")
	c.Report(r) // grow once
	// Pre-grow to the measured count so append never reallocates.
	const runs = 512
	c.mu.Lock()
	need := len(c.buf) + runs + 8
	grown := make([]Report, len(c.buf), need)
	copy(grown, c.buf)
	c.buf = grown
	c.mu.Unlock()
	allocs := testing.AllocsPerRun(runs, func() {
		if err := c.Report(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state enqueue costs %.1f allocs/op, want 0", allocs)
	}
}

// TestAppendReportsSteadyStateAllocs pins the encode path at zero
// allocations into a warm buffer.
func TestAppendReportsSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	batch := make([]Report, 64)
	for i := range batch {
		batch[i] = testReport("append.example")
	}
	warm, err := AppendReports(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		out, err := AppendReports(warm[:0], batch)
		if err != nil {
			t.Fatal(err)
		}
		warm = out[:0]
	})
	if allocs != 0 {
		t.Fatalf("warm AppendReports costs %.1f allocs/op, want 0", allocs)
	}
}

// TestAppendReportsMatchesEncoder pins the two encoding paths to the same
// bytes.
func TestAppendReportsMatchesEncoder(t *testing.T) {
	reports := []Report{
		testReport("a.example"),
		{Host: "b.example", ChainDER: [][]byte{make([]byte, 300)}},
	}
	one, err := EncodeReports(reports)
	if err != nil {
		t.Fatal(err)
	}
	two, err := AppendReports([]byte("pre"), reports)
	if err != nil {
		t.Fatal(err)
	}
	if string(two[:3]) != "pre" || string(two[3:]) != string(one) {
		t.Fatal("AppendReports diverges from EncodeReports")
	}
	// Decoder round trip.
	dec := NewDecoder(bytes.NewReader(one))
	for i := 0; ; i++ {
		rep, err := dec.Next()
		if err != nil {
			break
		}
		if rep.Host != reports[i].Host || len(rep.ChainDER) != len(reports[i].ChainDER) {
			t.Fatalf("report %d corrupted in round trip", i)
		}
	}
}
