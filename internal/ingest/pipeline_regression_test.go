package ingest

// Regression tests for the ingest-pipeline accounting and wakeup fixes:
// offered is counted before ring publication (so Drain can never miss an
// already-queued batch), lossy drops never reach a WAL, and Drain wakes
// on delivery events instead of a sleep quantum.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/telemetry"
)

// TestIngestedNeverExceedsEnqueued pins the counter protocol under
// concurrency: Stats promises Ingested <= Enqueued in every snapshot.
// The pre-fix enqueue bumped the accepted counter AFTER the channel
// send, so a worker could deliver a batch (Ingested += n) while the
// producer had not yet counted it — and a concurrent Drain could
// compute a target that excluded a batch already on the queue. Running
// producers, a Drain hammer, and a Stats sampler together (under -race
// in CI) recreates that window.
func TestIngestedNeverExceedsEnqueued(t *testing.T) {
	p := NewPipeline(Config{Shards: 4, BatchSize: 2, QueueDepth: 4, Block: true})
	ms := walTestMeasurements(256)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p.Ingest(ms[(i+w*17)%len(ms)])
				if i%32 == 0 {
					p.IngestBatch(ms[:8])
				}
			}
		}(w)
	}
	// Drain concurrently with producers: the original bug was a race
	// between Drain's target snapshot and an in-flight enqueue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Drain()
		}
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		st := p.Stats()
		if st.Ingested > st.Enqueued {
			t.Errorf("snapshot violates invariant: ingested %d > enqueued %d", st.Ingested, st.Enqueued)
			break
		}
	}
	close(stop)
	wg.Wait()
	p.Drain()
	st := p.Stats()
	if st.Ingested != st.Enqueued {
		t.Fatalf("after drain: ingested %d != enqueued %d", st.Ingested, st.Enqueued)
	}
	if st.Dropped != 0 {
		t.Fatalf("blocking pipeline dropped %d", st.Dropped)
	}
	p.Close()
}

// TestDrainReturnsPromptly pins the event-driven Drain wakeup: measured
// from the sink's last delivery, Drain must return in well under a
// millisecond at least once across many rounds. The pre-fix Drain
// polled on a sleep quantum, so its return lagged the final delivery
// by a scheduler-dependent nap regardless of load.
func TestDrainReturnsPromptly(t *testing.T) {
	var lastDelivery atomic.Int64
	p := NewPipeline(Config{Shards: 2, BatchSize: 4, Block: true, Sinks: func(int) BatchSink {
		return BatchSinkFunc(func([]core.Measurement) {
			lastDelivery.Store(time.Now().UnixNano())
		})
	}})
	defer p.Close()
	ms := walTestMeasurements(64)

	best := time.Duration(1 << 62)
	for round := 0; round < 50; round++ {
		for _, m := range ms {
			p.Ingest(m)
		}
		p.Drain()
		gap := time.Since(time.Unix(0, lastDelivery.Load()))
		if gap < best {
			best = gap
		}
	}
	if best > time.Millisecond {
		t.Fatalf("Drain returned %v after the last delivery at best over 50 rounds; want < 1ms (event wakeup, not a sleep quantum)", best)
	}
}

// TestLossyDropsNeverReachWAL pins two invariants of the lossy
// (Block=false) path: a dropped batch is never appended to the shard
// WAL (the write-ahead happens in the worker, strictly after a
// successful ring publication), and the ingest_dropped_total gauge
// agrees exactly with Stats.Dropped at quiesce.
func TestLossyDropsNeverReachWAL(t *testing.T) {
	dir := t.TempDir()
	// Depth-1 ring, one-measurement batches, and an fsync per append
	// make the worker maximally slow relative to the producer, so the
	// tight loop below overflows the queue quickly and deterministically
	// forces drops.
	cfg := Config{
		Shards: 1, BatchSize: 1, QueueDepth: 1, Block: false,
		WALDir: dir, WALSyncEachAppend: true, GroupCommit: 1,
	}
	p, _, err := OpenPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	p.MountMetrics(reg)

	ms := walTestMeasurements(64)
	for round := 0; round < 500 && p.Stats().Dropped < 50; round++ {
		for _, m := range ms {
			p.Ingest(m)
		}
	}
	p.Drain()
	st := p.Stats()
	if st.Dropped == 0 {
		t.Fatal("failed to force any drops (queue depth 1 + fsync-per-append should overflow)")
	}
	if st.Ingested != st.Enqueued {
		t.Fatalf("after drain: ingested %d != enqueued %d", st.Ingested, st.Enqueued)
	}
	if st.WALErrors != 0 {
		t.Fatalf("WAL errors: %d", st.WALErrors)
	}

	var gauge float64
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "ingest_dropped_total" {
			gauge, found = m.Value, true
		}
	}
	if !found {
		t.Fatal("ingest_dropped_total not mounted")
	}
	if gauge != float64(st.Dropped) {
		t.Fatalf("ingest_dropped_total = %v, Stats.Dropped = %d; must match exactly", gauge, st.Dropped)
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	recovered := recoverAll(t, dir, 1)
	if got := recovered.Totals().Tested; uint64(got) != st.Ingested {
		t.Fatalf("WAL replays %d measurements, pipeline delivered %d (dropped %d must never be appended)",
			got, st.Ingested, st.Dropped)
	}
}
