package ingest

import (
	"bytes"
	"crypto/x509/pkix"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"tlsfof/internal/certgen"
	"tlsfof/internal/classify"
	"tlsfof/internal/core"
)

var testPool = certgen.NewKeyPool(2, nil)

func testChain(t testing.TB, host string) [][]byte {
	t.Helper()
	ca, err := certgen.NewRootCA(certgen.CAConfig{
		Subject: pkix.Name{CommonName: "DigiCert High Assurance CA-3", Organization: []string{"DigiCert Inc"}},
		KeyBits: 1024, Pool: testPool,
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.IssueLeaf(certgen.LeafConfig{CommonName: host, KeyBits: 2048, Pool: testPool})
	if err != nil {
		t.Fatal(err)
	}
	return leaf.ChainDER
}

// TestBatchEndpointEndToEnd drives the wire codec through the HTTP batch
// endpoint into a sharded pipeline, and checks the merged store saw every
// report while rejects were counted, not dropped silently.
func TestBatchEndpointEndToEnd(t *testing.T) {
	chain := testChain(t, "tlsresearch.byu.edu")

	p := NewPipeline(Config{Shards: 2, BatchSize: 8, Block: true})
	col := core.NewCollector(classify.NewClassifier(), nil, p)
	col.Campaign = "wire-test"
	col.SetAuthoritative("tlsresearch.byu.edu", chain)

	srv := httptest.NewServer(BatchHandler(col))
	defer srv.Close()

	const good = 40
	reports := make([]Report, 0, good+1)
	for i := 0; i < good; i++ {
		reports = append(reports, Report{Host: "tlsresearch.byu.edu", ChainDER: chain})
	}
	// One report for a host the collector does not know: rejected.
	reports = append(reports, Report{Host: "unknown.example", ChainDER: chain})
	stream, err := EncodeReports(reports)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL, "application/octet-stream", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != good || res.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want %d/1", res.Accepted, res.Rejected, good)
	}

	p.Flush()
	p.Close()
	db := p.Merge(0)
	tot := db.Totals()
	if tot.Tested != good {
		t.Fatalf("store tested = %d, want %d", tot.Tested, good)
	}
	if tot.Proxied != 0 {
		t.Fatalf("clean chains flagged proxied: %d", tot.Proxied)
	}
	if got := db.ByCampaign()["wire-test"].Tested; got != good {
		t.Fatalf("campaign aggregate = %d, want %d", got, good)
	}
}

func TestBatchEndpointRejectsGarbage(t *testing.T) {
	p := NewPipeline(Config{Shards: 1, Block: true})
	defer p.Close()
	col := core.NewCollector(classify.NewClassifier(), nil, p)
	srv := httptest.NewServer(BatchHandler(col))
	defer srv.Close()

	resp, err := http.Post(srv.URL, "application/octet-stream", bytes.NewReader([]byte("not a wire stream")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage stream: status = %d, want 400", resp.StatusCode)
	}
	var res BatchResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Error == "" {
		t.Fatal("no error reported for garbage stream")
	}

	// GET refused.
	getResp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", getResp.StatusCode)
	}
}

func TestStatsHandler(t *testing.T) {
	p := NewPipeline(Config{Shards: 3, Block: true})
	for _, m := range synthetic(100, 9) {
		p.Ingest(m)
	}
	p.Flush()
	srv := httptest.NewServer(StatsHandler(p))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("stats shards = %d, want 3", len(st.Shards))
	}
	if st.Enqueued != 100 {
		t.Fatalf("enqueued = %d, want 100", st.Enqueued)
	}
	p.Close()
}
