package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"tlsfof/internal/core"
	"tlsfof/internal/telemetry"
)

// Router decides report-level ownership for a cluster-mode collector.
// The fields are plain functions so this package stays ignorant of the
// cluster package (cluster imports ingest, never the reverse): a
// reportd node wires them to its ring, tests wire them to literals.
type Router struct {
	// Owns reports whether this node owns the given host's shard.
	Owns func(host string) bool
	// Owner names the owning node and its base URL for a host this node
	// does not own. It may return "" when the ring has no answer.
	Owner func(host string) (id, url string)
}

// RoutedBatchHandler is BatchHandler for a cluster node: it decodes the
// ENTIRE stream before ingesting anything, and if any report's host
// belongs to another node it refuses the whole batch with a not-owner
// verdict naming that owner. All-or-nothing is the property that makes
// client retargeting duplicate-free — a refused batch provably touched
// no state, so the re-send to the true owner cannot double-count. (The
// plain BatchHandler streams instead, ingesting as it decodes; routing
// makes that trade unsafe.)
func RoutedBatchHandler(col *core.Collector, route Router) http.Handler {
	if route.Owns == nil {
		panic("ingest: RoutedBatchHandler requires route.Owns")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		ip := core.ClientIPFromRequest(r)
		body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
		st := getDecodeState(body)
		// The whole-batch buffer and every report's chain alias pooled
		// decode memory; put() retires them after the ingest loop below,
		// by which point all retained state owns its own bytes.
		defer st.put()
		dec := st.dec
		var res BatchResult
		reports := st.reports
		status := http.StatusOK
		for {
			rep, err := dec.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				// Unlike BatchHandler, nothing was ingested yet: a
				// damaged stream refuses the whole batch, and the
				// client may safely re-send it.
				res.Error = err.Error()
				status = http.StatusBadRequest
				var tooLarge *http.MaxBytesError
				if errors.As(err, &tooLarge) {
					res.Error = fmt.Sprintf("body exceeds %d bytes", maxBatchBytes)
					status = http.StatusRequestEntityTooLarge
				}
				reports = nil
				break
			}
			reports = append(reports, rep)
		}
		st.reports = reports // hand any growth back to the pool
		if status == http.StatusOK {
			for _, rep := range reports {
				if route.Owns(rep.Host) {
					continue
				}
				res = BatchResult{NotOwner: true}
				if route.Owner != nil {
					res.Owner, res.OwnerURL = route.Owner(rep.Host)
				}
				reports = nil
				break
			}
		}
		tracer := col.Tracer
		for _, rep := range reports {
			start := stageStart(tracer)
			if tracer != nil {
				tracer.Record(telemetry.TraceID(rep.Trace), telemetry.StageDecode, start, time.Since(start))
			}
			if _, err := col.IngestTraced(ip, rep.Host, rep.ChainDER, col.Campaign, rep.Trace); err != nil {
				res.Rejected++
				continue
			}
			res.Accepted++
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(res)
	})
}
