package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// wrapPipe returns the fault-wrapped client end of a pipe and the raw
// peer end.
func wrapPipe(t *testing.T, p *Plan) (*Conn, net.Conn) {
	t.Helper()
	client, peer := net.Pipe()
	fc := p.Wrap(client)
	t.Cleanup(func() { fc.Close(); peer.Close() })
	return fc, peer
}

func TestScheduleReplayIsIdentical(t *testing.T) {
	build := func() []ConnSchedule {
		p := NewPlan(42, Scenarios()...)
		for i := 0; i < 30; i++ {
			c, _ := net.Pipe()
			p.Wrap(c).Close()
		}
		return p.Schedule()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%+v\nvs\n%+v", a, b)
	}
	if len(a) != 30 {
		t.Fatalf("schedule has %d entries, want 30", len(a))
	}
}

func TestScheduleDependsOnSeed(t *testing.T) {
	sc := Scenario{Name: "garbage", GarbagePrefix: 16}
	mk := func(seed uint64) ConnSchedule {
		p := NewPlan(seed, sc)
		c, _ := net.Pipe()
		p.Wrap(c).Close()
		return p.Schedule()[0]
	}
	a, b := mk(1), mk(2)
	if bytes.Equal(a.Prefix, b.Prefix) && a.CorruptMask == b.CorruptMask {
		t.Fatalf("different seeds produced identical derived fault state")
	}
}

func TestTruncateAtExactOffset(t *testing.T) {
	p := NewPlan(7, Scenario{Name: "trunc", TruncateReadAt: 600})
	fc, peer := wrapPipe(t, p)
	go func() {
		buf := make([]byte, 1000)
		peer.Write(buf)
	}()
	got, err := io.ReadAll(fc)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 600 {
		t.Fatalf("read %d bytes, want exactly 600 then EOF", len(got))
	}
	st := p.Stats()["trunc"]
	if st.Truncates != 1 {
		t.Fatalf("stats.Truncates = %d, want 1", st.Truncates)
	}
}

func TestResetAtOffset(t *testing.T) {
	p := NewPlan(7, Scenario{Name: "rst", ResetReadAt: 100})
	fc, peer := wrapPipe(t, p)
	go func() { peer.Write(make([]byte, 500)) }()
	n, err := io.Copy(io.Discard, fc)
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("copy ended with %v after %d bytes, want ErrInjectedReset", err, n)
	}
	if n != 100 {
		t.Fatalf("delivered %d bytes before reset, want 100", n)
	}
	// The terminal error is sticky.
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset read: %v, want sticky ErrInjectedReset", err)
	}
}

func TestWriteFragmentation(t *testing.T) {
	p := NewPlan(7, Scenario{Name: "frag", WriteFragment: 3})
	fc, peer := wrapPipe(t, p)
	var sizes []int
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64)
		for {
			n, err := peer.Read(buf)
			if n > 0 {
				sizes = append(sizes, n)
			}
			if err != nil {
				return
			}
		}
	}()
	msg := []byte("0123456789") // 10 bytes → 3+3+3+1
	if n, err := fc.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	fc.Close()
	<-done
	if len(sizes) != 4 || sizes[0] != 3 || sizes[3] != 1 {
		t.Fatalf("peer saw segments %v, want [3 3 3 1]", sizes)
	}
}

func TestWriteSwapReordersSegments(t *testing.T) {
	p := NewPlan(7, Scenario{Name: "swap", WriteFragment: 2, WriteSwap: true})
	fc, peer := wrapPipe(t, p)
	var got bytes.Buffer
	done := make(chan struct{})
	go func() { io.Copy(&got, peer); close(done) }()
	fc.Write([]byte("abcdef"))
	fc.Close()
	<-done
	if got.String() != "cdabef" {
		t.Fatalf("peer saw %q, want %q (adjacent 2-byte segments swapped)", got.String(), "cdabef")
	}
}

func TestCoalesceFlushesBeforeRead(t *testing.T) {
	p := NewPlan(7, Scenario{Name: "coal", WriteCoalesce: true})
	fc, peer := wrapPipe(t, p)
	done := make(chan []byte, 1)
	go func() {
		// Echo server: read the coalesced request, reply.
		buf := make([]byte, 64)
		n, _ := peer.Read(buf)
		peer.Write([]byte("ok"))
		done <- append([]byte(nil), buf[:n]...)
	}()
	fc.Write([]byte("hel"))
	fc.Write([]byte("lo"))
	// Nothing must have reached the peer yet; the Read below flushes.
	reply := make([]byte, 2)
	if _, err := io.ReadFull(fc, reply); err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if req := <-done; string(req) != "hello" {
		t.Fatalf("peer saw %q, want one coalesced %q", req, "hello")
	}
}

func TestCorruptionIsDeterministic(t *testing.T) {
	run := func(seed uint64) []byte {
		p := NewPlan(seed, Scenario{Name: "corr", CorruptReadEvery: 5})
		fc, peer := wrapPipe(t, p)
		src := bytes.Repeat([]byte{0xAA}, 32)
		go func() { peer.Write(src); peer.Close() }()
		got, _ := io.ReadAll(fc)
		return got
	}
	a, b := run(3), run(3)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different corrupted streams")
	}
	clean := bytes.Repeat([]byte{0xAA}, 32)
	if bytes.Equal(a, clean) {
		t.Fatalf("corruption scenario delivered a clean stream")
	}
	// Corruptions land exactly every 5th byte (offsets 4, 9, ...).
	for i, c := range a {
		corrupted := c != 0xAA
		want := (i+1)%5 == 0
		if corrupted != want {
			t.Fatalf("byte %d corrupted=%v, want %v", i, corrupted, want)
		}
	}
}

func TestPrefixInjection(t *testing.T) {
	p := NewPlan(9, Scenario{Name: "pfx", AlertPrefix: true, GarbagePrefix: 4})
	fc, peer := wrapPipe(t, p)
	go func() { peer.Write([]byte("real")); peer.Close() }()
	got, err := io.ReadAll(fc)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	sched := p.Schedule()[0]
	if len(sched.Prefix) != len(spuriousAlert)+4 {
		t.Fatalf("schedule prefix %d bytes, want %d", len(sched.Prefix), len(spuriousAlert)+4)
	}
	want := append(append([]byte(nil), sched.Prefix...), "real"...)
	if !bytes.Equal(got, want) {
		t.Fatalf("read %x, want prefix-then-stream %x", got, want)
	}
	if !bytes.HasPrefix(got, spuriousAlert[:]) {
		t.Fatalf("stream does not begin with the spurious alert record")
	}
}

func TestStallRespectsDeadline(t *testing.T) {
	p := NewPlan(5, Scenario{Name: "loris", WriteStallAt: 2, StallFor: 30 * time.Second})
	fc, peer := wrapPipe(t, p)
	go io.Copy(io.Discard, peer)
	fc.SetDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := fc.Write(make([]byte, 100))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stalled write returned %v, want a net.Error timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline-bounded stall took %v", elapsed)
	}
}

func TestStallAbortsOnClose(t *testing.T) {
	p := NewPlan(5, Scenario{Name: "loris", WriteStallAt: 2, StallFor: 30 * time.Second})
	fc, peer := wrapPipe(t, p)
	go io.Copy(io.Discard, peer)
	errc := make(chan error, 1)
	go func() {
		_, err := fc.Write(make([]byte, 100))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatalf("stalled write succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("stalled write did not abort on Close")
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("fragment,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Scenarios) != 1 || p.Scenarios[0].Name != "fragment" {
		t.Fatalf("ParseSpec: %+v", p)
	}
	p, err = ParseSpec("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Scenarios) != len(Scenarios()) {
		t.Fatalf("all selected %d scenarios", len(p.Scenarios))
	}
	p, err = ParseSpec("clean,truncate=128,wfrag=2,delay=3ms")
	if err != nil {
		t.Fatal(err)
	}
	sc := p.Scenarios[0]
	if sc.TruncateReadAt != 128 || sc.WriteFragment != 2 || sc.ReadDelay != 3*time.Millisecond {
		t.Fatalf("overrides not applied: %+v", sc)
	}
	for _, bad := range []string{"nope", "clean,seed=x", "clean,bogus=1", "clean,truncate=-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	p := NewPlan(1, Scenario{Name: "dup", WriteFragment: 4, WriteDup: true})
	fc, peer := wrapPipe(t, p)
	var got bytes.Buffer
	done := make(chan struct{})
	go func() { io.Copy(&got, peer); close(done) }()
	fc.Write([]byte("12345678"))
	fc.Close()
	<-done
	if got.String() != "1234123456785678" {
		t.Fatalf("dup stream = %q", got.String())
	}
	st := p.Stats()["dup"]
	if st.Conns != 1 || st.DupSegments != 2 || st.BytesWritten != 8 {
		t.Fatalf("stats = %+v", st)
	}
}
