// Package faultnet is a seeded, fully deterministic fault-injection
// layer for net.Conn. The paper's measurement ran over the open Internet
// from 142 countries (§4), where probes met truncated flights,
// mid-handshake resets, slow and coalesced records, fragmented TLS
// records, and garbage bytes; faultnet reproduces that hostility in the
// lab, on demand, from a replayable seed.
//
// A Plan owns a seed and a set of Scenarios. Every connection wrapped by
// the plan gets a per-connection RNG derived from (seed, connection
// index) and a Scenario assigned round-robin, so the complete fault
// schedule — which connection is truncated where, which bytes are
// corrupted with which mask, what garbage is prepended — is a pure
// function of the seed and the wrap order. Plan.Schedule returns that
// record; two plans built from the same seed produce identical
// schedules, which is what makes a failing fault-matrix run replayable.
//
// Faults are applied on the wrapped side only; the peer sees ordinary
// (if hostile-looking) traffic. Write-side faults (fragmentation,
// coalescing, duplication, segment swaps, slowloris stalls) mangle what
// the wrapped endpoint sends; read-side faults (truncation, resets,
// per-read latency, byte corruption, garbage and spurious-alert
// prefixes) mangle what it receives. Stalls and delays respect both the
// connection's deadlines and Close, so a probe's own timeout machinery
// — not the fault layer — decides when a stalled exchange dies.
//
// The cmd layer exposes plans via -fault flags (see ParseSpec), the
// netsim harness via View.WithFaults, and TestFaultMatrix at the repo
// root drives the full scenario grid through both the raw-probe and
// interceptor planes. DESIGN.md §9 documents the architecture.
package faultnet
