package faultnet

import (
	"net"
	"sync"
	"testing"
	"time"
)

// nopConn is the cheapest possible net.Conn: Wrap only needs something
// to hold, and this test never moves bytes through the wrapper.
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)       { return 0, nil }
func (nopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return nil }
func (nopConn) RemoteAddr() net.Addr             { return nil }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

// TestStatsSnapshotInvariants scrapes Plan.Stats while goroutines wrap
// connections, asserting the causal invariants hold in every snapshot:
// Wrap bumps Conns before Alerts/GarbageBytes, and ScenarioStats.Snapshot
// loads Conns last, so no snapshot may show more alert prefixes than
// connections. Under -race this also proves scraping is race-free
// against Wrap. The old load order (Conns first) fails this under load.
func TestStatsSnapshotInvariants(t *testing.T) {
	const garbage = 16
	p := NewPlan(7, Scenario{Name: "noisy", AlertPrefix: true, GarbagePrefix: garbage})

	// Workers do a fixed amount of wrapping; the scraper runs until they
	// finish so the overlap is guaranteed even on one CPU (a time-boxed
	// scrape loop can complete before any worker is scheduled).
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Wrap(nopConn{})
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	for i := 0; ; i++ {
		st := p.Stats()["noisy"]
		if st.Alerts > st.Conns {
			t.Fatalf("snapshot %d: Alerts (%d) > Conns (%d)", i, st.Alerts, st.Conns)
		}
		if st.GarbageBytes > st.Conns*garbage {
			t.Fatalf("snapshot %d: GarbageBytes (%d) > Conns*%d (%d)",
				i, st.GarbageBytes, garbage, st.Conns*garbage)
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}

	st := p.Stats()["noisy"]
	if st.Conns == 0 || st.Alerts != st.Conns || st.GarbageBytes != st.Conns*garbage {
		t.Fatalf("quiescent accounting wrong: %+v", st)
	}
}
