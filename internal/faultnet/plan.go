package faultnet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tlsfof/internal/stats"
)

// ScenarioStats counts the fault activity of every connection that ran
// one scenario. All fields are updated atomically and safe to snapshot
// while connections are live.
type ScenarioStats struct {
	Conns            uint64 `json:"conns"`
	Reads            uint64 `json:"reads"`
	Writes           uint64 `json:"writes"`
	BytesRead        uint64 `json:"bytes_read"`
	BytesWritten     uint64 `json:"bytes_written"`
	Truncates        uint64 `json:"truncates"`
	Resets           uint64 `json:"resets"`
	CorruptBytes     uint64 `json:"corrupt_bytes"`
	GarbageBytes     uint64 `json:"garbage_bytes"`
	Alerts           uint64 `json:"alerts"`
	Stalls           uint64 `json:"stalls"`
	Delays           uint64 `json:"delays"`
	DupSegments      uint64 `json:"dup_segments"`
	SwappedPairs     uint64 `json:"swapped_pairs"`
	CoalescedFlushes uint64 `json:"coalesced_flushes"`
}

func (s *ScenarioStats) add(field *uint64, n uint64) {
	if s == nil {
		return
	}
	atomic.AddUint64(field, n)
}

// Snapshot copies the stats without tearing and coherently: every
// activity counter is the effect of some wrapped connection existing,
// and Wrap bumps Conns before any activity, so loading the activity
// counters first and Conns LAST keeps the causal invariant
// (Alerts ≤ Conns for alert scenarios, and no snapshot showing fault
// activity with zero connections) true even when a scrape races Wrap.
// Loading Conns first — the old order — could capture Conns from before
// a racing Wrap and that Wrap's Alerts after it.
func (s *ScenarioStats) Snapshot() ScenarioStats {
	var out ScenarioStats
	out.Reads = atomic.LoadUint64(&s.Reads)
	out.Writes = atomic.LoadUint64(&s.Writes)
	out.BytesRead = atomic.LoadUint64(&s.BytesRead)
	out.BytesWritten = atomic.LoadUint64(&s.BytesWritten)
	out.Truncates = atomic.LoadUint64(&s.Truncates)
	out.Resets = atomic.LoadUint64(&s.Resets)
	out.CorruptBytes = atomic.LoadUint64(&s.CorruptBytes)
	out.GarbageBytes = atomic.LoadUint64(&s.GarbageBytes)
	out.Alerts = atomic.LoadUint64(&s.Alerts)
	out.Stalls = atomic.LoadUint64(&s.Stalls)
	out.Delays = atomic.LoadUint64(&s.Delays)
	out.DupSegments = atomic.LoadUint64(&s.DupSegments)
	out.SwappedPairs = atomic.LoadUint64(&s.SwappedPairs)
	out.CoalescedFlushes = atomic.LoadUint64(&s.CoalescedFlushes)
	out.Conns = atomic.LoadUint64(&s.Conns)
	return out
}

// ConnSchedule is the fully derived fault plan of one wrapped
// connection — everything nondeterministic about its behavior, pinned.
// Two plans with the same seed produce byte-identical schedules for the
// same wrap sequence, which is the replayability contract TestFaultMatrix
// asserts.
type ConnSchedule struct {
	Conn        int    `json:"conn"`
	Scenario    string `json:"scenario"`
	RNGSeed     uint64 `json:"rng_seed"`
	CorruptMask byte   `json:"corrupt_mask"`
	// Prefix is the exact injected byte prefix (alert record + garbage).
	Prefix []byte `json:"prefix,omitempty"`
	// The offsets and knobs copied from the scenario, so the schedule
	// alone describes the faults.
	TruncateReadAt   int   `json:"truncate_read_at,omitempty"`
	ResetReadAt      int   `json:"reset_read_at,omitempty"`
	CorruptReadEvery int   `json:"corrupt_read_every,omitempty"`
	WriteFragment    int   `json:"write_fragment,omitempty"`
	ReadFragment     int   `json:"read_fragment,omitempty"`
	WriteStallAt     int   `json:"write_stall_at,omitempty"`
	StallForMS       int64 `json:"stall_for_ms,omitempty"`
	ReadDelayUS      int64 `json:"read_delay_us,omitempty"`
	WriteCoalesce    bool  `json:"write_coalesce,omitempty"`
	WriteDup         bool  `json:"write_dup,omitempty"`
	WriteSwap        bool  `json:"write_swap,omitempty"`
}

// Plan derives deterministic per-connection fault state from one seed.
// Scenarios are assigned to connections round-robin in wrap order. Safe
// for concurrent use.
type Plan struct {
	Seed      uint64
	Scenarios []Scenario

	mu       sync.Mutex
	next     int
	schedule []ConnSchedule
	stats    map[string]*ScenarioStats
}

// NewPlan builds a plan over the given scenarios (the zero-fault clean
// scenario when none are given).
func NewPlan(seed uint64, scenarios ...Scenario) *Plan {
	if len(scenarios) == 0 {
		scenarios = []Scenario{{Name: "clean"}}
	}
	return &Plan{Seed: seed, Scenarios: scenarios, stats: make(map[string]*ScenarioStats)}
}

// Wrap assigns the next scenario to conn and returns the fault-injecting
// wrapper. The derived schedule entry is appended to Plan.Schedule.
//
// Per-connection randomness comes from the repo's deterministic RNG
// substrate (internal/stats), seeded by a PRF of (plan seed, connection
// index) with no shared stream state — wrap order is the only thing
// that matters for schedule determinism.
func (p *Plan) Wrap(conn net.Conn) *Conn {
	p.mu.Lock()
	idx := p.next
	p.next++
	sc := p.Scenarios[idx%len(p.Scenarios)]
	seed := p.Seed ^ (uint64(idx)+1)*0x9e3779b97f4a7c15
	r := stats.NewRNG(seed)
	mask := byte(r.Uint64()) | 0x01 // nonzero: a corruption always changes the byte
	var prefix []byte
	if sc.AlertPrefix {
		prefix = append(prefix, spuriousAlert[:]...)
	}
	if sc.GarbagePrefix > 0 {
		garbage := make([]byte, sc.GarbagePrefix)
		r.Bytes(garbage)
		prefix = append(prefix, garbage...)
	}
	entry := ConnSchedule{
		Conn:             idx,
		Scenario:         sc.Name,
		RNGSeed:          seed,
		CorruptMask:      mask,
		Prefix:           prefix,
		TruncateReadAt:   sc.TruncateReadAt,
		ResetReadAt:      sc.ResetReadAt,
		CorruptReadEvery: sc.CorruptReadEvery,
		WriteFragment:    sc.WriteFragment,
		ReadFragment:     sc.ReadFragment,
		WriteStallAt:     sc.WriteStallAt,
		StallForMS:       sc.StallFor.Milliseconds(),
		ReadDelayUS:      sc.ReadDelay.Microseconds(),
		WriteCoalesce:    sc.WriteCoalesce,
		WriteDup:         sc.WriteDup,
		WriteSwap:        sc.WriteSwap,
	}
	p.schedule = append(p.schedule, entry)
	st := p.stats[sc.Name]
	if st == nil {
		st = &ScenarioStats{}
		p.stats[sc.Name] = st
	}
	p.mu.Unlock()

	st.add(&st.Conns, 1)
	st.add(&st.GarbageBytes, uint64(sc.GarbagePrefix))
	if sc.AlertPrefix {
		st.add(&st.Alerts, 1)
	}
	return newConn(conn, sc, prefix, mask, st)
}

// Schedule snapshots the derived per-connection fault schedule so far.
func (p *Plan) Schedule() []ConnSchedule {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ConnSchedule, len(p.schedule))
	copy(out, p.schedule)
	return out
}

// Stats snapshots per-scenario fault accounting.
func (p *Plan) Stats() map[string]ScenarioStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]ScenarioStats, len(p.stats))
	for name, st := range p.stats {
		out[name] = st.Snapshot()
	}
	return out
}

// Dialer wraps a host-keyed dial function so every dialed connection
// passes through the plan — the probe-side mount point.
func (p *Plan) Dialer(dial func(host string) (net.Conn, error)) func(host string) (net.Conn, error) {
	return func(host string) (net.Conn, error) {
		conn, err := dial(host)
		if err != nil {
			return nil, err
		}
		return p.Wrap(conn), nil
	}
}

// Listener wraps ln so every accepted connection passes through the
// plan — the proxy-side mount point (cmd/mitmd -fault).
func (p *Plan) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, plan: p}
}

type faultListener struct {
	net.Listener
	plan *Plan
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.plan.Wrap(conn), nil
}

// Transport returns an http.RoundTripper whose TCP connections pass
// through the plan — the ingest-client mount point. Keep-alives are
// disabled so every request meets the fault schedule afresh.
func (p *Plan) Transport() *http.Transport {
	var d net.Dialer
	return &http.Transport{
		DisableKeepAlives: true,
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			conn, err := d.DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return p.Wrap(conn), nil
		},
	}
}

// Scenarios returns the built-in fault grid: one scenario per fault
// family, tuned so a few-KB TLS flight meets every fault mid-flight.
// TestFaultMatrix drives this exact grid through both planes.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "clean"},
		{Name: "truncate", TruncateReadAt: 600},
		{Name: "reset", ResetReadAt: 600},
		{Name: "fragment", WriteFragment: 3, ReadFragment: 7},
		{Name: "coalesce", WriteCoalesce: true},
		{Name: "slow", ReadDelay: 2 * time.Millisecond, ReadFragment: 512},
		{Name: "slowloris", WriteStallAt: 20, StallFor: 30 * time.Second},
		{Name: "corrupt", CorruptReadEvery: 64},
		{Name: "garbage", GarbagePrefix: 16},
		{Name: "alert", AlertPrefix: true},
		{Name: "duplicate", WriteFragment: 64, WriteDup: true},
		{Name: "reorder", WriteFragment: 16, WriteSwap: true},
	}
}

// ScenarioByName looks a built-in scenario up.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// ScenarioNames lists the built-in scenario names, sorted.
func ScenarioNames() []string {
	scs := Scenarios()
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.Name
	}
	sort.Strings(names)
	return names
}

// ParseSpec parses the -fault flag DSL into a plan:
//
//	spec     = selector *( "," option )
//	selector = scenario-name | "all"
//	option   = "seed=" uint | knob "=" value
//	knob     = "truncate" | "reset" | "rfrag" | "wfrag" | "corrupt" |
//	           "garbage" | "delay" (duration) | "stallat" | "stallfor"
//	           (duration) | "coalesce" | "dup" | "swap" | "alert"
//
// Examples: "fragment", "all,seed=42", "truncate,truncate=128",
// "clean,wfrag=2,seed=7". Knob options override the selected scenario's
// fields (for "all", every scenario's).
func ParseSpec(spec string) (*Plan, error) {
	parts := strings.Split(spec, ",")
	sel := strings.TrimSpace(parts[0])
	var scenarios []Scenario
	switch {
	case sel == "all":
		scenarios = Scenarios()
	default:
		sc, ok := ScenarioByName(sel)
		if !ok {
			return nil, fmt.Errorf("faultnet: unknown scenario %q (have %s, or \"all\")", sel, strings.Join(ScenarioNames(), ", "))
		}
		scenarios = []Scenario{sc}
	}
	var seed uint64 = 1
	for _, opt := range parts[1:] {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		key, val, hasVal := strings.Cut(opt, "=")
		apply := func(f func(sc *Scenario) error) error {
			for i := range scenarios {
				if err := f(&scenarios[i]); err != nil {
					return err
				}
			}
			return nil
		}
		parseInt := func() (int, error) {
			if !hasVal {
				return 0, fmt.Errorf("faultnet: option %q needs a value", key)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("faultnet: bad value %q for %q", val, key)
			}
			return n, nil
		}
		parseDur := func() (time.Duration, error) {
			if !hasVal {
				return 0, fmt.Errorf("faultnet: option %q needs a duration", key)
			}
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return 0, fmt.Errorf("faultnet: bad duration %q for %q", val, key)
			}
			return d, nil
		}
		var err error
		switch key {
		case "seed":
			if !hasVal {
				return nil, fmt.Errorf("faultnet: seed needs a value")
			}
			seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultnet: bad seed %q", val)
			}
		case "truncate":
			err = applyInt(apply, parseInt, func(sc *Scenario, n int) { sc.TruncateReadAt = n })
		case "reset":
			err = applyInt(apply, parseInt, func(sc *Scenario, n int) { sc.ResetReadAt = n })
		case "rfrag":
			err = applyInt(apply, parseInt, func(sc *Scenario, n int) { sc.ReadFragment = n })
		case "wfrag":
			err = applyInt(apply, parseInt, func(sc *Scenario, n int) { sc.WriteFragment = n })
		case "corrupt":
			err = applyInt(apply, parseInt, func(sc *Scenario, n int) { sc.CorruptReadEvery = n })
		case "garbage":
			err = applyInt(apply, parseInt, func(sc *Scenario, n int) { sc.GarbagePrefix = n })
		case "stallat":
			err = applyInt(apply, parseInt, func(sc *Scenario, n int) { sc.WriteStallAt = n })
		case "delay":
			var d time.Duration
			if d, err = parseDur(); err == nil {
				err = apply(func(sc *Scenario) error { sc.ReadDelay = d; return nil })
			}
		case "stallfor":
			var d time.Duration
			if d, err = parseDur(); err == nil {
				err = apply(func(sc *Scenario) error { sc.StallFor = d; return nil })
			}
		case "coalesce":
			err = apply(func(sc *Scenario) error { sc.WriteCoalesce = true; return nil })
		case "dup":
			err = apply(func(sc *Scenario) error { sc.WriteDup = true; return nil })
		case "swap":
			err = apply(func(sc *Scenario) error { sc.WriteSwap = true; return nil })
		case "alert":
			err = apply(func(sc *Scenario) error { sc.AlertPrefix = true; return nil })
		default:
			return nil, fmt.Errorf("faultnet: unknown option %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return NewPlan(seed, scenarios...), nil
}

// applyInt wires an integer knob through the shared parse/apply plumbing.
func applyInt(apply func(func(*Scenario) error) error, parse func() (int, error), set func(*Scenario, int)) error {
	n, err := parse()
	if err != nil {
		return err
	}
	return apply(func(sc *Scenario) error { set(sc, n); return nil })
}
