package faultnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// chaosEcho is a trivial HTTP endpoint the link tests dial through the
// controller.
func chaosEcho(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, "ok")
	}))
	t.Cleanup(srv.Close)
	return srv
}

func addrOf(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestChaosCutRefusesDialsAndHeals(t *testing.T) {
	srv := chaosEcho(t)
	ctrl := NewController(ChaosPlan{Seed: 1, Phases: []ChaosPhase{
		{Name: "clean"},
		{Name: "cut", Rules: []LinkRule{{From: "client", To: "b", State: LinkState{Cut: true}}}},
		{Name: "healed"},
	}})
	ctrl.Register("b", addrOf(t, srv))
	client := ctrl.Client("client")

	get := func() error {
		resp, err := client.Get(srv.URL)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}
	if err := get(); err != nil {
		t.Fatalf("clean phase: %v", err)
	}
	ctrl.Advance()
	err := get()
	if err == nil {
		t.Fatal("cut phase delivered a request")
	}
	// The cut must surface either as a refused dial or as a reset on the
	// pooled conn — both trace to ErrInjectedReset.
	if !errors.Is(err, ErrInjectedReset) && !strings.Contains(err.Error(), "link cut") {
		t.Fatalf("cut error %v does not identify the injected cut", err)
	}
	ctrl.Advance()
	if err := get(); err != nil {
		t.Fatalf("healed phase: %v", err)
	}
	st := ctrl.Stats()["client->b"]
	if st.Dials == 0 || st.CutDials+st.CutReads+st.CutWrites == 0 {
		t.Fatalf("stats %+v: the cut left no trace", st)
	}
	if ctrl.Flaps() != 2 {
		t.Fatalf("flaps %d, want 2 (clean→cut, cut→healed)", ctrl.Flaps())
	}
}

// TestChaosCutRecvDeliversRequestButKillsResponse pins the asymmetric
// one-way cut: the server observes and handles the request, the client
// never sees the response — the window that forces duplicate-suppression
// into any retrying protocol above it.
func TestChaosCutRecvDeliversRequestButKillsResponse(t *testing.T) {
	served := make(chan struct{}, 16)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		served <- struct{}{}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	ctrl := NewController(ChaosPlan{Seed: 3, Phases: []ChaosPhase{
		{Name: "asym", Rules: []LinkRule{{From: "client", To: "b", State: LinkState{CutRecv: true}}}},
	}})
	ctrl.Register("b", addrOf(t, srv))
	client := ctrl.Client("client")
	// The one-way cut is silence: without a timeout the response wait
	// would hang forever (exactly the gray failure split-deadline clients
	// exist to bound).
	client.Timeout = 400 * time.Millisecond

	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Fatal("one-way cut delivered a response")
	}
	select {
	case <-served:
	case <-time.After(5 * time.Second):
		t.Fatal("one-way cut blocked the request; it must only kill the response")
	}
	if st := ctrl.Stats()["client->b"]; st.CutReads == 0 {
		t.Fatalf("stats %+v: no cut reads recorded", st)
	}
}

func TestChaosLatencyHonorsDeadline(t *testing.T) {
	srv := chaosEcho(t)
	ctrl := NewController(ChaosPlan{Seed: 5, Phases: []ChaosPhase{
		{Name: "slow", Rules: []LinkRule{{From: "client", To: "b", State: LinkState{Latency: 40 * time.Millisecond, LatencyJitter: 10 * time.Millisecond}}}},
	}})
	ctrl.Register("b", addrOf(t, srv))
	client := ctrl.Client("client")
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("request finished in %v; the 40ms link latency never applied", elapsed)
	}
	if st := ctrl.Stats()["client->b"]; st.DelayedReads == 0 {
		t.Fatalf("stats %+v: no delayed reads", st)
	}

	// Under a deadline shorter than the injected latency the read must
	// time out promptly, not sleep the full injection.
	dial := ctrl.DialContext("client", nil)
	conn, err := dial(context.Background(), "tcp", addrOf(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
	fmt.Fprint(conn, "GET / HTTP/1.0\r\n\r\n")
	buf := make([]byte, 64)
	start = time.Now()
	_, err = conn.Read(buf)
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("read under short deadline returned %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout surfaced after %v; the injected latency ignored the deadline", elapsed)
	}
}

func TestChaosThrottleCapsReads(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	defer srv.Close()
	ctrl := NewController(ChaosPlan{Seed: 7, Phases: []ChaosPhase{
		{Name: "throttle", Rules: []LinkRule{{From: "client", To: "b", State: LinkState{ThrottleBytes: 256, ThrottleDelay: time.Microsecond}}}},
	}})
	ctrl.Register("b", addrOf(t, srv))
	resp, err := ctrl.Client("client").Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != len(payload) {
		t.Fatalf("throttled transfer: %d bytes, err %v", len(body), err)
	}
	st := ctrl.Stats()["client->b"]
	if st.ThrottledReads < uint64(len(payload)/256) {
		t.Fatalf("stats %+v: too few throttled reads for a %d-byte body", st, len(payload))
	}
}

func TestChaosWildcardAndUnknownEndpoints(t *testing.T) {
	srv := chaosEcho(t)
	ctrl := NewController(ChaosPlan{Seed: 9, Phases: []ChaosPhase{
		{Name: "cut-all", Rules: []LinkRule{
			{From: "client", To: "c", State: LinkState{}}, // specific exception before the wildcard
			{From: "client", To: "*", State: LinkState{Cut: true}},
		}},
	}})
	addr := addrOf(t, srv)
	ctrl.Register("b", addr)
	if _, err := ctrl.Client("client").Get(srv.URL); err == nil {
		t.Fatal("wildcard cut did not apply to a registered endpoint")
	}
	// Unknown endpoints resolve to "*" and meet wildcard To rules too.
	srv2 := chaosEcho(t)
	if _, err := ctrl.Client("client").Get(srv2.URL); err == nil {
		t.Fatal("wildcard cut did not apply to an unregistered endpoint")
	}
	// The exception: register the same address as "c" and the first-match
	// rule exempts it.
	ctrl2 := NewController(ChaosPlan{Seed: 9, Phases: []ChaosPhase{
		{Name: "cut-all", Rules: []LinkRule{
			{From: "client", To: "c", State: LinkState{}},
			{From: "client", To: "*", State: LinkState{Cut: true}},
		}},
	}})
	ctrl2.Register("c", addr)
	resp, err := ctrl2.Client("client").Get(srv.URL)
	if err != nil {
		t.Fatalf("exempted endpoint cut anyway: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestChaosWallClockSchedule(t *testing.T) {
	ctrl := NewController(ChaosPlan{Phases: []ChaosPhase{
		{Name: "p0", For: 20 * time.Millisecond},
		{Name: "p1", For: 20 * time.Millisecond},
		{Name: "p2"},
	}})
	ctrl.Start()
	defer ctrl.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for ctrl.Phase() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("stuck at phase %d (%s)", ctrl.Phase(), ctrl.PhaseName())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ctrl.PhaseName() != "p2" {
		t.Fatalf("phase name %q", ctrl.PhaseName())
	}
}

func TestParseChaosSpec(t *testing.T) {
	plan, err := ParseChaosSpec("seed=42,for=2s;cut=b:*,name=partition,for=3s;lat=a:b:50ms,throttle=c:b:1024;name=healed")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || len(plan.Phases) != 4 {
		t.Fatalf("plan %+v", plan)
	}
	if plan.Phases[0].For != 2*time.Second || len(plan.Phases[0].Rules) != 0 {
		t.Fatalf("phase 0 %+v", plan.Phases[0])
	}
	p1 := plan.Phases[1]
	if p1.Name != "partition" || p1.For != 3*time.Second || len(p1.Rules) != 1 ||
		!p1.Rules[0].State.Cut || p1.Rules[0].From != "b" || p1.Rules[0].To != "*" {
		t.Fatalf("phase 1 %+v", p1)
	}
	p2 := plan.Phases[2]
	if len(p2.Rules) != 2 || p2.Rules[0].State.Latency != 50*time.Millisecond || p2.Rules[1].State.ThrottleBytes != 1024 {
		t.Fatalf("phase 2 %+v", p2)
	}
	if plan.Phases[3].Name != "healed" {
		t.Fatalf("phase 3 %+v", plan.Phases[3])
	}
	for _, bad := range []string{"cut=b", "bogus=1", "lat=a:b:xx", "for=-1s", "throttle=a:b:0", "cut"} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
}

// TestChaosJitterDeterminism pins the seeded-schedule contract at the
// chaos layer: same seed, same wrap order → identical per-conn jitter
// draws (observed indirectly through the RNG stream driving them).
func TestChaosJitterDeterminism(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		srv := chaosEcho(t)
		ctrl := NewController(ChaosPlan{Seed: seed, Phases: []ChaosPhase{
			{Name: "slow", Rules: []LinkRule{{From: "x", To: "y", State: LinkState{Latency: time.Millisecond, LatencyJitter: 10 * time.Millisecond}}}},
		}})
		ctrl.Register("y", addrOf(t, srv))
		dial := ctrl.DialContext("x", nil)
		var outs []time.Duration
		for i := 0; i < 3; i++ {
			conn, err := dial(context.Background(), "tcp", addrOf(t, srv))
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprint(conn, "GET / HTTP/1.0\r\n\r\n")
			start := time.Now()
			buf := make([]byte, 1)
			if _, err := conn.Read(buf); err != nil {
				t.Fatal(err)
			}
			outs = append(outs, time.Since(start))
			conn.Close()
		}
		return outs
	}
	a, b := mk(11), mk(11)
	for i := range a {
		// Wall-clock noise allows slack; the jitter span is 10ms, so two
		// identical draws land within a few ms while distinct draws spread
		// across the span. We only require the deterministic lower bound:
		// both runs saw the same injected floor.
		if a[i] < time.Millisecond || b[i] < time.Millisecond {
			t.Fatalf("conn %d: latency floor missing (%v, %v)", i, a[i], b[i])
		}
	}
}
