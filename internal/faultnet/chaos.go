package faultnet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tlsfof/internal/stats"
)

// LinkState is the condition of one directed link (from → to) during
// one chaos phase. The zero value is a healthy link. Faults are applied
// on the dialing side: every request/response exchange in the cluster
// (ingest routing, replication tails, control, merge) is client-driven
// HTTP, so dialer-side injection covers every link, and directionality
// falls out naturally — cutting a→b leaves b→a untouched.
type LinkState struct {
	// Cut kills the link outright: new dials are refused and established
	// conns fail on their next Read or Write (the symmetric partition).
	Cut bool
	// CutRecv delivers requests but destroys responses: Writes pass,
	// Reads hang to the conn deadline (silence, as a real one-way packet
	// drop — an instant reset would abort the in-flight request write on
	// the shared conn and degrade to a symmetric cut). This makes a
	// server APPLY a batch whose ack the client never sees — the
	// scenario that forces duplicate-suppression into the ingest
	// protocol.
	CutRecv bool
	// Blackhole makes cut operations hang until the conn deadline
	// instead of failing fast with a reset — the gray-failure flavor
	// where a middlebox silently eats packets.
	Blackhole bool
	// Latency is added before every Read (the slow-but-alive node),
	// jittered ±LatencyJitter by the per-conn seeded RNG.
	Latency       time.Duration
	LatencyJitter time.Duration
	// ThrottleBytes caps every Read at this many bytes and inserts
	// ThrottleDelay (default 1ms) between reads — a crude but
	// deterministic bandwidth clamp.
	ThrottleBytes int
	ThrottleDelay time.Duration
}

func (ls LinkState) clean() bool {
	return ls == LinkState{}
}

// LinkRule scopes a LinkState to a directed endpoint pair. "*" matches
// any endpoint (including unregistered ones on the To side).
type LinkRule struct {
	From, To string
	State    LinkState
}

func (r LinkRule) matches(from, to string) bool {
	return (r.From == "*" || r.From == from) && (r.To == "*" || r.To == to)
}

// ChaosPhase is one interval of the schedule: the link rules in force
// until the controller advances. Rules are evaluated in order; the
// first match wins (so a specific pair can carve an exception out of a
// wildcard that follows it). Links matching no rule are healthy.
type ChaosPhase struct {
	Name string
	// For auto-advances to the next phase this long after the phase
	// starts, when the controller is Started; 0 means the phase holds
	// until Advance is called (the deterministic test mode).
	For   time.Duration
	Rules []LinkRule
}

// ChaosPlan is a seeded, phase-scheduled link-state matrix for a whole
// cluster — internal/faultnet's per-connection Plan lifted to the
// topology level. The same plan driven by the same advance sequence
// produces the same fault exposure, which is what lets the chaos matrix
// pin golden tables under partitions.
type ChaosPlan struct {
	Seed   uint64
	Phases []ChaosPhase
}

// LinkStats counts one directed link's injected activity. Updated
// atomically; safe to snapshot while traffic flows.
type LinkStats struct {
	Dials          uint64 `json:"dials"`
	CutDials       uint64 `json:"cut_dials"`
	CutReads       uint64 `json:"cut_reads"`
	CutWrites      uint64 `json:"cut_writes"`
	DelayedReads   uint64 `json:"delayed_reads"`
	ThrottledReads uint64 `json:"throttled_reads"`
	Blackholes     uint64 `json:"blackholes"`
}

type linkCounters struct {
	dials, cutDials, cutReads, cutWrites, delayed, throttled, blackholes atomic.Uint64
}

func (c *linkCounters) snapshot() LinkStats {
	// Activity counters load before Dials (the cause), mirroring
	// ScenarioStats.Snapshot's effect-before-cause order.
	out := LinkStats{
		CutDials:       c.cutDials.Load(),
		CutReads:       c.cutReads.Load(),
		CutWrites:      c.cutWrites.Load(),
		DelayedReads:   c.delayed.Load(),
		ThrottledReads: c.throttled.Load(),
		Blackholes:     c.blackholes.Load(),
	}
	out.Dials = c.dials.Load()
	return out
}

// ErrLinkCut is the error a cut link surfaces on dials, reads, and
// writes (unless the state black-holes instead).
var ErrLinkCut = fmt.Errorf("faultnet: chaos link cut: %w", ErrInjectedReset)

// Controller drives one ChaosPlan over a set of named endpoints. Mount
// it on each participant's dialer (Transport/Client/DialContext) with
// that participant's name; the controller resolves the destination
// endpoint from the dialed address and applies the current phase's rule
// for the (from, to) pair on every operation — so a phase change cuts,
// slows, or heals established connections mid-flight, not just new
// dials. Advance/SetPhase are the deterministic drive; Start runs the
// phases' For durations on the wall clock for real-process use.
type Controller struct {
	plan ChaosPlan

	phase atomic.Int64
	flaps atomic.Uint64

	mu        sync.Mutex
	endpoints map[string]string // addr -> name
	links     map[string]*linkCounters
	connSeq   uint64
	timer     *time.Timer
	stopped   bool
}

// NewController builds a controller at phase 0 of plan. A plan with no
// phases gets a single clean phase.
func NewController(plan ChaosPlan) *Controller {
	if len(plan.Phases) == 0 {
		plan.Phases = []ChaosPhase{{Name: "clean"}}
	}
	return &Controller{
		plan:      plan,
		endpoints: make(map[string]string),
		links:     make(map[string]*linkCounters),
	}
}

// Register names an endpoint address so dials to it resolve to name in
// the link matrix. host:port exactly as dialed.
func (c *Controller) Register(name, addr string) {
	c.mu.Lock()
	c.endpoints[addr] = name
	c.mu.Unlock()
}

// Phase returns the current phase index.
func (c *Controller) Phase() int { return int(c.phase.Load()) }

// PhaseName returns the current phase's name.
func (c *Controller) PhaseName() string {
	i := c.Phase()
	if i >= len(c.plan.Phases) {
		i = len(c.plan.Phases) - 1
	}
	return c.plan.Phases[i].Name
}

// Advance moves to the next phase (clamped at the last) and returns the
// new index. Every link whose Cut bit flips counts one flap.
func (c *Controller) Advance() int {
	for {
		cur := c.phase.Load()
		if int(cur) >= len(c.plan.Phases)-1 {
			return int(cur)
		}
		if c.phase.CompareAndSwap(cur, cur+1) {
			c.countFlaps(int(cur), int(cur+1))
			return int(cur + 1)
		}
	}
}

// SetPhase jumps to phase i (clamped).
func (c *Controller) SetPhase(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(c.plan.Phases) {
		i = len(c.plan.Phases) - 1
	}
	prev := c.phase.Swap(int64(i))
	if int(prev) != i {
		c.countFlaps(int(prev), i)
	}
}

func (c *Controller) countFlaps(from, to int) {
	// A flap is a link whose Cut condition changed across the phase
	// boundary — the flapping-link scenarios assert this fired.
	pairs := make(map[[2]string]struct{})
	for _, r := range c.plan.Phases[from].Rules {
		pairs[[2]string{r.From, r.To}] = struct{}{}
	}
	for _, r := range c.plan.Phases[to].Rules {
		pairs[[2]string{r.From, r.To}] = struct{}{}
	}
	for p := range pairs {
		a := c.ruleFor(from, p[0], p[1])
		b := c.ruleFor(to, p[0], p[1])
		if (a.Cut || a.CutRecv) != (b.Cut || b.CutRecv) {
			c.flaps.Add(1)
		}
	}
}

func (c *Controller) ruleFor(phase int, from, to string) LinkState {
	for _, r := range c.plan.Phases[phase].Rules {
		if r.matches(from, to) {
			return r.State
		}
	}
	return LinkState{}
}

// Flaps counts links whose cut state flipped across phase transitions.
func (c *Controller) Flaps() uint64 { return c.flaps.Load() }

// Start runs the plan on the wall clock: each phase with a positive For
// advances automatically that long after it begins. Phases with For==0
// hold until Advance/SetPhase (or forever). Stop cancels the clock.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = false
	c.armLocked()
}

func (c *Controller) armLocked() {
	if c.stopped {
		return
	}
	i := c.Phase()
	if i >= len(c.plan.Phases) {
		return
	}
	d := c.plan.Phases[i].For
	if d <= 0 {
		return
	}
	c.timer = time.AfterFunc(d, func() {
		c.Advance()
		c.mu.Lock()
		c.armLocked()
		c.mu.Unlock()
	})
}

// Stop cancels the wall-clock schedule (the current phase freezes).
func (c *Controller) Stop() {
	c.mu.Lock()
	c.stopped = true
	if c.timer != nil {
		c.timer.Stop()
	}
	c.mu.Unlock()
}

// state resolves the current LinkState for a directed pair.
func (c *Controller) state(from, to string) LinkState {
	i := c.Phase()
	if i >= len(c.plan.Phases) {
		i = len(c.plan.Phases) - 1
	}
	return c.ruleFor(i, from, to)
}

func (c *Controller) counters(from, to string) *linkCounters {
	key := from + "->" + to
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := c.links[key]
	if lc == nil {
		lc = &linkCounters{}
		c.links[key] = lc
	}
	return lc
}

// Stats snapshots per-link fault accounting, keyed "from->to".
func (c *Controller) Stats() map[string]LinkStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]LinkStats, len(c.links))
	for key, lc := range c.links {
		out[key] = lc.snapshot()
	}
	return out
}

// TotalStats folds every link into one aggregate.
func (c *Controller) TotalStats() LinkStats {
	var out LinkStats
	for _, ls := range c.Stats() {
		out.Dials += ls.Dials
		out.CutDials += ls.CutDials
		out.CutReads += ls.CutReads
		out.CutWrites += ls.CutWrites
		out.DelayedReads += ls.DelayedReads
		out.ThrottledReads += ls.ThrottledReads
		out.Blackholes += ls.Blackholes
	}
	return out
}

// DialContext returns a context dial function for the named endpoint:
// every conn it produces is subject to the link matrix between from and
// the resolved destination. base nil uses a plain net.Dialer.
func (c *Controller) DialContext(from string, base func(ctx context.Context, network, addr string) (net.Conn, error)) func(ctx context.Context, network, addr string) (net.Conn, error) {
	if base == nil {
		var d net.Dialer
		base = d.DialContext
	}
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		c.mu.Lock()
		to, known := c.endpoints[addr]
		c.connSeq++
		seq := c.connSeq
		c.mu.Unlock()
		if !known {
			to = "*"
		}
		lc := c.counters(from, to)
		lc.dials.Add(1)
		st := c.state(from, to)
		if st.Cut {
			lc.cutDials.Add(1)
			if st.Blackhole {
				lc.blackholes.Add(1)
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return nil, ErrLinkCut
		}
		conn, err := base(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		seed := c.plan.Seed ^ (seq+1)*0x9e3779b97f4a7c15
		return &chaosConn{
			Conn: conn,
			ctrl: c,
			from: from,
			to:   to,
			lc:   lc,
			rng:  stats.NewRNG(seed),
			done: make(chan struct{}),
		}, nil
	}
}

// Transport returns an http.RoundTripper for the named endpoint whose
// connections pass through the link matrix. Keep-alives stay ON —
// unlike the per-connection Plan, chaos phases must reach into pooled
// conns mid-life, and the chaosConn re-checks the matrix on every
// operation.
func (c *Controller) Transport(from string) *http.Transport {
	return &http.Transport{DialContext: c.DialContext(from, nil)}
}

// Client wraps Transport in an http.Client. Callers needing split
// connect/idle deadlines compose via DialContext instead.
func (c *Controller) Client(from string) *http.Client {
	return &http.Client{Transport: c.Transport(from)}
}

// chaosConn applies the controller's CURRENT link state on every
// operation, so a phase change mid-connection takes effect immediately.
type chaosConn struct {
	net.Conn
	ctrl     *Controller
	from, to string
	lc       *linkCounters
	rng      *stats.RNG

	rngMu sync.Mutex

	dlMu       sync.Mutex
	rdDeadline time.Time
	wrDeadline time.Time

	closeOnce sync.Once
	done      chan struct{}
}

func (cc *chaosConn) SetDeadline(t time.Time) error {
	cc.dlMu.Lock()
	cc.rdDeadline, cc.wrDeadline = t, t
	cc.dlMu.Unlock()
	return cc.Conn.SetDeadline(t)
}

func (cc *chaosConn) SetReadDeadline(t time.Time) error {
	cc.dlMu.Lock()
	cc.rdDeadline = t
	cc.dlMu.Unlock()
	return cc.Conn.SetReadDeadline(t)
}

func (cc *chaosConn) SetWriteDeadline(t time.Time) error {
	cc.dlMu.Lock()
	cc.wrDeadline = t
	cc.dlMu.Unlock()
	return cc.Conn.SetWriteDeadline(t)
}

func (cc *chaosConn) Close() error {
	cc.closeOnce.Do(func() { close(cc.done) })
	return cc.Conn.Close()
}

// hang blocks until the conn's deadline or Close — the black-hole
// failure mode, indistinguishable from packet loss.
func (cc *chaosConn) hang(deadline time.Time) error {
	cc.lc.blackholes.Add(1)
	if deadline.IsZero() {
		<-cc.done
		return net.ErrClosed
	}
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case <-t.C:
		return stallTimeoutError{}
	case <-cc.done:
		return net.ErrClosed
	}
}

// pause sleeps d, honoring the deadline and Close (same contract as
// Conn.pause).
func (cc *chaosConn) pause(d time.Duration, deadline time.Time) error {
	if d <= 0 {
		return nil
	}
	if !deadline.IsZero() {
		if until := time.Until(deadline); until < d {
			if until > 0 {
				t := time.NewTimer(until)
				defer t.Stop()
				select {
				case <-t.C:
				case <-cc.done:
					return net.ErrClosed
				}
			}
			return stallTimeoutError{}
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-cc.done:
		return net.ErrClosed
	}
}

func (cc *chaosConn) readDeadline() time.Time {
	cc.dlMu.Lock()
	defer cc.dlMu.Unlock()
	return cc.rdDeadline
}

func (cc *chaosConn) writeDeadline() time.Time {
	cc.dlMu.Lock()
	defer cc.dlMu.Unlock()
	return cc.wrDeadline
}

func (cc *chaosConn) Read(p []byte) (int, error) {
	st := cc.ctrl.state(cc.from, cc.to)
	if st.Cut || st.CutRecv {
		cc.lc.cutReads.Add(1)
		// A one-way cut is silence, not a reset: the peer's packets simply
		// never arrive. An instant read error would make the HTTP transport
		// tear down the conn before the request write completes, turning
		// the asymmetric cut into a symmetric one. Hang to the deadline so
		// the request flows and only the response dies.
		if st.Blackhole || (st.CutRecv && !st.Cut) {
			return 0, cc.hang(cc.readDeadline())
		}
		cc.Conn.Close() // the pooled conn must not be reused healthy
		return 0, ErrLinkCut
	}
	if st.Latency > 0 {
		d := st.Latency
		if st.LatencyJitter > 0 {
			cc.rngMu.Lock()
			d += time.Duration(cc.rng.Uint64() % uint64(st.LatencyJitter))
			cc.rngMu.Unlock()
		}
		cc.lc.delayed.Add(1)
		if err := cc.pause(d, cc.readDeadline()); err != nil {
			return 0, err
		}
	}
	limit := len(p)
	if st.ThrottleBytes > 0 && limit > st.ThrottleBytes {
		limit = st.ThrottleBytes
	}
	if st.ThrottleBytes > 0 {
		cc.lc.throttled.Add(1)
		delay := st.ThrottleDelay
		if delay <= 0 {
			delay = time.Millisecond
		}
		if err := cc.pause(delay, cc.readDeadline()); err != nil {
			return 0, err
		}
	}
	if limit == 0 && len(p) > 0 {
		limit = 1
	}
	return cc.Conn.Read(p[:limit])
}

func (cc *chaosConn) Write(p []byte) (int, error) {
	st := cc.ctrl.state(cc.from, cc.to)
	if st.Cut {
		cc.lc.cutWrites.Add(1)
		if st.Blackhole {
			return 0, cc.hang(cc.writeDeadline())
		}
		cc.Conn.Close()
		return 0, ErrLinkCut
	}
	return cc.Conn.Write(p)
}

// ParseChaosSpec parses the -chaos flag DSL into a plan. Phases are
// separated by ';'; each phase is comma-separated options:
//
//	seed=N          plan seed (any phase; last wins)
//	name=S          phase name
//	for=DUR         wall-clock auto-advance (Start mode)
//	cut=F:T         cut the directed link F→T
//	cutrecv=F:T     one-way cut: F's requests reach T, responses die
//	blackhole=F:T   like cut, but operations hang to the deadline
//	lat=F:T:DUR     add DUR latency to F→T reads
//	throttle=F:T:N  cap F→T reads at N bytes each
//
// F and T are endpoint names registered on the controller, or "*".
// Example: "for=2s;cut=b:*,for=3s,name=partition;name=healed".
func ParseChaosSpec(spec string) (ChaosPlan, error) {
	plan := ChaosPlan{Seed: 1}
	for _, phaseSpec := range strings.Split(spec, ";") {
		phase := ChaosPhase{}
		for _, opt := range strings.Split(phaseSpec, ",") {
			opt = strings.TrimSpace(opt)
			if opt == "" {
				continue
			}
			key, val, hasVal := strings.Cut(opt, "=")
			if !hasVal {
				return ChaosPlan{}, fmt.Errorf("faultnet: chaos option %q needs a value", key)
			}
			link := func() (from, to, rest string, err error) {
				parts := strings.SplitN(val, ":", 3)
				if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
					return "", "", "", fmt.Errorf("faultnet: chaos %s=%q: want FROM:TO", key, val)
				}
				if len(parts) == 3 {
					rest = parts[2]
				}
				return parts[0], parts[1], rest, nil
			}
			switch key {
			case "seed":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return ChaosPlan{}, fmt.Errorf("faultnet: bad chaos seed %q", val)
				}
				plan.Seed = n
			case "name":
				phase.Name = val
			case "for":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return ChaosPlan{}, fmt.Errorf("faultnet: bad chaos duration %q", val)
				}
				phase.For = d
			case "cut", "cutrecv", "blackhole":
				from, to, _, err := link()
				if err != nil {
					return ChaosPlan{}, err
				}
				st := LinkState{}
				switch key {
				case "cut":
					st.Cut = true
				case "cutrecv":
					st.CutRecv = true
				case "blackhole":
					st.Cut = true
					st.Blackhole = true
				}
				phase.Rules = append(phase.Rules, LinkRule{From: from, To: to, State: st})
			case "lat":
				from, to, rest, err := link()
				if err != nil {
					return ChaosPlan{}, err
				}
				d, derr := time.ParseDuration(rest)
				if derr != nil || d < 0 {
					return ChaosPlan{}, fmt.Errorf("faultnet: bad chaos latency %q", rest)
				}
				phase.Rules = append(phase.Rules, LinkRule{From: from, To: to, State: LinkState{Latency: d}})
			case "throttle":
				from, to, rest, err := link()
				if err != nil {
					return ChaosPlan{}, err
				}
				n, nerr := strconv.Atoi(rest)
				if nerr != nil || n <= 0 {
					return ChaosPlan{}, fmt.Errorf("faultnet: bad chaos throttle %q", rest)
				}
				phase.Rules = append(phase.Rules, LinkRule{From: from, To: to, State: LinkState{ThrottleBytes: n}})
			default:
				return ChaosPlan{}, fmt.Errorf("faultnet: unknown chaos option %q", key)
			}
		}
		plan.Phases = append(plan.Phases, phase)
	}
	return plan, nil
}

// StatsSummary renders the controller's per-link stats as sorted
// one-liners — the exit summary / log form.
func (c *Controller) StatsSummary() []string {
	st := c.Stats()
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		ls := st[k]
		out = append(out, fmt.Sprintf("%s: dials=%d cut_dials=%d cut_reads=%d cut_writes=%d delayed=%d throttled=%d blackholes=%d",
			k, ls.Dials, ls.CutDials, ls.CutReads, ls.CutWrites, ls.DelayedReads, ls.ThrottledReads, ls.Blackholes))
	}
	return out
}
