package faultnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// Scenario is one fault recipe. The zero value injects nothing (the
// "clean" control cell of the matrix). All byte offsets count bytes of
// the real stream, excluding injected prefixes.
type Scenario struct {
	Name string

	// Write-side faults: mangle what the wrapped endpoint sends.

	// WriteFragment splits every Write into segments of at most this many
	// bytes, each delivered to the underlying conn as its own Write — on
	// a pipe or a no-delay socket this forces the peer to reassemble TLS
	// records from arbitrary read boundaries.
	WriteFragment int
	// WriteCoalesce buffers writes and flushes them in one underlying
	// Write at the next Read (a sender cannot await a reply without
	// flushing) or at Close — the Nagle-style batching that merges whole
	// flights into one segment.
	WriteCoalesce bool
	// WriteDup sends every segment twice.
	WriteDup bool
	// WriteSwap swaps each pair of adjacent segments within one Write
	// (meaningful only with WriteFragment), reordering the byte stream.
	WriteSwap bool
	// WriteStallAt stalls the connection for StallFor once this many
	// bytes have been written (slowloris: open, send a little, go quiet).
	// The stall respects deadlines and Close.
	WriteStallAt int
	StallFor     time.Duration

	// Read-side faults: mangle what the wrapped endpoint receives.

	// ReadFragment caps every Read at this many bytes.
	ReadFragment int
	// ReadDelay sleeps before every Read (respecting deadlines/Close).
	ReadDelay time.Duration
	// TruncateReadAt ends the stream with a clean EOF after this many
	// bytes have been read, and closes the underlying conn. 0 = never.
	TruncateReadAt int
	// ResetReadAt fails the stream with ErrInjectedReset after this many
	// bytes have been read, and closes the underlying conn. 0 = never.
	ResetReadAt int
	// CorruptReadEvery XORs one byte with the conn's seeded mask every
	// this many bytes read. 0 = never.
	CorruptReadEvery int
	// GarbagePrefix delivers this many seeded garbage bytes before the
	// first real byte.
	GarbagePrefix int
	// AlertPrefix delivers a fatal TLS handshake_failure alert record
	// before the first real byte — the spurious alert a confused
	// middlebox emits.
	AlertPrefix bool
}

// ErrInjectedReset is the error surfaced when a scenario resets the
// connection mid-flight. It stands in for the peer's RST.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// stallTimeoutError is returned when a connection deadline expires while
// a fault-injected stall or delay is pending. It satisfies net.Error
// with Timeout() == true, exactly like an OS-level read timeout.
type stallTimeoutError struct{}

func (stallTimeoutError) Error() string   { return "faultnet: i/o timeout during injected stall" }
func (stallTimeoutError) Timeout() bool   { return true }
func (stallTimeoutError) Temporary() bool { return true }

// spuriousAlert is the wire image of a fatal handshake_failure alert
// record (TLS 1.0 record version, as middleboxes of the era sent).
var spuriousAlert = [7]byte{21, 3, 1, 0, 2, 2, 40}

// Conn wraps a net.Conn, applying one Scenario deterministically. Not
// safe for concurrent Read/Read or Write/Write calls (net.Conn's own
// contract); Read and Write may run concurrently except under
// WriteCoalesce/WriteSwap, whose flush-on-read handoff serializes on an
// internal mutex.
type Conn struct {
	net.Conn
	sc    Scenario
	stats *ScenarioStats

	// Read state.
	rdOff   int    // real bytes delivered so far
	pre     []byte // injected prefix (alert + garbage) still to deliver
	mask    byte   // corruption XOR mask, seeded nonzero
	termErr error  // non-nil once a truncate/reset fired; returned by every later Read

	// Write state.
	wrOff   int
	stalled bool // stall already fired

	// pending holds coalesced (or swap-held) bytes awaiting flush.
	pendMu  sync.Mutex
	pending []byte

	// Deadline mirror: stalls and delays must honor deadlines without
	// help from the underlying conn.
	dlMu       sync.Mutex
	rdDeadline time.Time
	wrDeadline time.Time

	closeOnce sync.Once
	done      chan struct{}
}

// newConn is called by Plan.Wrap with the fully derived scenario state.
func newConn(underlying net.Conn, sc Scenario, pre []byte, mask byte, stats *ScenarioStats) *Conn {
	return &Conn{
		Conn:  underlying,
		sc:    sc,
		pre:   pre,
		mask:  mask,
		stats: stats,
		done:  make(chan struct{}),
	}
}

// pause sleeps for d, returning early with an error when the deadline
// passes first or the conn is closed. A nil return means the full pause
// elapsed.
func (c *Conn) pause(d time.Duration, deadline time.Time) error {
	if !deadline.IsZero() {
		if until := time.Until(deadline); until < d {
			// Sleep out the deadline, then report the timeout the caller
			// would have hit inside the OS read/write.
			if until > 0 {
				t := time.NewTimer(until)
				defer t.Stop()
				select {
				case <-t.C:
				case <-c.done:
					return net.ErrClosed
				}
			}
			return stallTimeoutError{}
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.done:
		return net.ErrClosed
	}
}

func (c *Conn) readDeadline() time.Time {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	return c.rdDeadline
}

func (c *Conn) writeDeadline() time.Time {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	return c.wrDeadline
}

// SetDeadline mirrors the deadline for injected stalls and forwards it.
func (c *Conn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rdDeadline, c.wrDeadline = t, t
	c.dlMu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline mirrors and forwards.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rdDeadline = t
	c.dlMu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetWriteDeadline mirrors and forwards.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.wrDeadline = t
	c.dlMu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// Read applies the scenario's read-side faults.
func (c *Conn) Read(p []byte) (int, error) {
	// A reader awaiting a reply implies the writer is done with its
	// flight: flush coalesced bytes so hostile batching never deadlocks
	// the exchange (the paper's probes survived Nagle, not black holes).
	if err := c.flushPending(); err != nil {
		return 0, err
	}
	if c.sc.ReadDelay > 0 {
		c.stats.add(&c.stats.Delays, 1)
		if err := c.pause(c.sc.ReadDelay, c.readDeadline()); err != nil {
			return 0, err
		}
	}
	if len(p) == 0 {
		return c.Conn.Read(p)
	}
	// Injected prefix bytes are delivered before any real traffic and do
	// not advance the real-stream offset.
	if len(c.pre) > 0 {
		n := copy(p, c.pre)
		c.pre = c.pre[n:]
		return n, nil
	}
	if c.termErr != nil {
		return 0, c.termErr
	}
	limit := len(p)
	if c.sc.ReadFragment > 0 && limit > c.sc.ReadFragment {
		limit = c.sc.ReadFragment
	}
	// Never read past a scheduled truncation/reset boundary: the cut
	// lands at the exact byte offset the schedule says.
	cut := 0
	if c.sc.TruncateReadAt > 0 {
		cut = c.sc.TruncateReadAt
	}
	if c.sc.ResetReadAt > 0 && (cut == 0 || c.sc.ResetReadAt < cut) {
		cut = c.sc.ResetReadAt
	}
	if cut > 0 {
		if remain := cut - c.rdOff; remain <= 0 {
			return 0, c.kill()
		} else if limit > remain {
			limit = remain
		}
	}
	n, err := c.Conn.Read(p[:limit])
	if n > 0 {
		if hit := CorruptEvery(p[:n], c.rdOff, c.sc.CorruptReadEvery, c.mask); hit > 0 {
			c.stats.add(&c.stats.CorruptBytes, uint64(hit))
		}
		c.rdOff += n
		c.stats.add(&c.stats.BytesRead, uint64(n))
	}
	c.stats.add(&c.stats.Reads, 1)
	if err == nil && cut > 0 && c.rdOff >= cut {
		// Deliver the final bytes now; the next Read reports the cut.
		c.kill()
	}
	return n, err
}

// CorruptEvery XORs mask into every byte of b whose 1-based stream
// offset is a multiple of every, where off is the stream offset of b[0].
// It returns how many bytes it flipped. This is the seeded corruption
// primitive behind Scenario.CorruptReadEvery, exported so other layers
// can inject byte-identical damage — the durable WAL's crash matrix runs
// it over segment files to model media corruption.
func CorruptEvery(b []byte, off, every int, mask byte) int {
	if every <= 0 {
		return 0
	}
	hit := 0
	for i := range b {
		if (off+i+1)%every == 0 {
			b[i] ^= mask
			hit++
		}
	}
	return hit
}

// kill fires the scheduled truncation or reset exactly at its boundary
// and returns the terminal error every subsequent Read repeats.
func (c *Conn) kill() error {
	c.closeUnderlying()
	if c.sc.ResetReadAt > 0 && (c.sc.TruncateReadAt == 0 || c.sc.ResetReadAt <= c.sc.TruncateReadAt) {
		c.stats.add(&c.stats.Resets, 1)
		c.termErr = ErrInjectedReset
	} else {
		c.stats.add(&c.stats.Truncates, 1)
		c.termErr = io.EOF
	}
	return c.termErr
}

func (c *Conn) closeUnderlying() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.Conn.Close()
	})
}

// Write applies the scenario's write-side faults. It reports len(p) on
// success regardless of duplication.
func (c *Conn) Write(p []byte) (int, error) {
	c.stats.add(&c.stats.Writes, 1)
	if at := c.sc.WriteStallAt; at > 0 && !c.stalled && c.wrOff+len(p) > at {
		// Deliver the pre-stall prefix, then go quiet.
		head := at - c.wrOff
		if head < 0 {
			head = 0
		}
		if head > 0 {
			if n, err := c.writeSegments(p[:head]); err != nil {
				return n, err
			}
		}
		c.stalled = true
		c.stats.add(&c.stats.Stalls, 1)
		if err := c.pause(c.sc.StallFor, c.writeDeadline()); err != nil {
			return head, err
		}
		n, err := c.writeSegments(p[head:])
		return head + n, err
	}
	return c.writeSegments(p)
}

// writeSegments fragments, swaps, duplicates, or coalesces p per the
// scenario and delivers it to the underlying conn.
func (c *Conn) writeSegments(p []byte) (int, error) {
	if c.sc.WriteCoalesce {
		c.pendMu.Lock()
		c.pending = append(c.pending, p...)
		c.pendMu.Unlock()
		c.wrOff += len(p)
		c.stats.add(&c.stats.BytesWritten, uint64(len(p)))
		return len(p), nil
	}
	frag := c.sc.WriteFragment
	if frag <= 0 {
		frag = len(p)
	}
	var segs [][]byte
	for rest := p; len(rest) > 0; {
		n := frag
		if n > len(rest) {
			n = len(rest)
		}
		segs = append(segs, rest[:n])
		rest = rest[n:]
	}
	if c.sc.WriteSwap {
		for i := 0; i+1 < len(segs); i += 2 {
			segs[i], segs[i+1] = segs[i+1], segs[i]
			c.stats.add(&c.stats.SwappedPairs, 1)
		}
	}
	written := 0
	for _, seg := range segs {
		n, err := c.Conn.Write(seg)
		written += n
		if err != nil {
			return written, err
		}
		if c.sc.WriteDup {
			if _, err := c.Conn.Write(seg); err != nil {
				return written, err
			}
			c.stats.add(&c.stats.DupSegments, 1)
		}
	}
	c.wrOff += written
	c.stats.add(&c.stats.BytesWritten, uint64(written))
	return written, nil
}

// flushPending delivers coalesced bytes in one underlying Write.
func (c *Conn) flushPending() error {
	c.pendMu.Lock()
	pend := c.pending
	c.pending = nil
	c.pendMu.Unlock()
	if len(pend) == 0 {
		return nil
	}
	c.stats.add(&c.stats.CoalescedFlushes, 1)
	_, err := c.Conn.Write(pend)
	return err
}

// Close flushes any coalesced bytes (best effort) and closes the
// underlying conn. It also aborts any in-flight injected stall.
func (c *Conn) Close() error {
	_ = c.flushPending()
	c.closeUnderlying()
	return nil
}
